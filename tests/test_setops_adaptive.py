"""Adaptive set-op kernel tests: dispatch, equivalence, aliasing safety.

The adaptive kernels must be drop-in equivalent to the legacy numpy
set-routine path (``use_adaptive(False)``) for every input shape — the
engines' byte-identical-results guarantee rests on it. The aliasing
tests pin the rule that *every* array a kernel returns is read-only,
including the fast paths that hand back an alias of an input: those
aliases share storage with the CSR graph, so a writable return would let
one engine silently corrupt another's adjacency.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engines import setops
from repro.engines.setops import (
    GALLOP_RATIO,
    SetOpStats,
    bound_above,
    bound_below,
    difference,
    exclude,
    intersect,
    use_adaptive,
)


def sorted_unique(max_value: int = 200, max_size: int = 40):
    return st.lists(
        st.integers(0, max_value), unique=True, max_size=max_size
    ).map(lambda xs: np.array(sorted(xs), dtype=np.int64))


class TestAdaptiveMatchesLegacy:
    @given(sorted_unique(), sorted_unique())
    @settings(max_examples=150, deadline=None)
    def test_intersect(self, a, b):
        with use_adaptive(True):
            adaptive = intersect(a, b, SetOpStats())
        with use_adaptive(False):
            legacy = intersect(a, b, SetOpStats())
        assert np.array_equal(adaptive, legacy)

    @given(sorted_unique(), sorted_unique())
    @settings(max_examples=150, deadline=None)
    def test_difference(self, a, b):
        with use_adaptive(True):
            adaptive = difference(a, b, SetOpStats())
        with use_adaptive(False):
            legacy = difference(a, b, SetOpStats())
        assert np.array_equal(adaptive, legacy)

    @given(sorted_unique(), st.lists(st.integers(0, 200), max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_exclude(self, arr, values):
        with use_adaptive(True):
            adaptive = exclude(arr, values)
        with use_adaptive(False):
            legacy = exclude(arr, values)
        assert np.array_equal(adaptive, legacy)

    def test_skewed_sizes_hit_gallop_path(self):
        small = np.array([3, 500, 900], dtype=np.int64)
        big = np.arange(1000, dtype=np.int64)
        stats = SetOpStats()
        out = intersect(small, big, stats)
        assert out.tolist() == [3, 500, 900]
        assert stats.galloped == 1
        # Symmetric: big first, small second gallops too.
        stats2 = SetOpStats()
        assert intersect(big, small, stats2).tolist() == [3, 500, 900]
        assert stats2.galloped == 1

    def test_comparable_sizes_use_merge_path(self):
        a = np.arange(0, 40, 2, dtype=np.int64)
        b = np.arange(0, 40, 3, dtype=np.int64)
        stats = SetOpStats()
        out = intersect(a, b, stats)
        assert out.tolist() == sorted(set(a.tolist()) & set(b.tolist()))
        assert stats.galloped == 0

    def test_ratio_boundary(self):
        # Exactly GALLOP_RATIO times larger: the gallop path fires.
        small = np.array([5], dtype=np.int64)
        big = np.arange(GALLOP_RATIO, dtype=np.int64)
        stats = SetOpStats()
        intersect(small, big, stats)
        assert stats.galloped == 1
        # One short of the ratio: merge path.
        stats = SetOpStats()
        intersect(small, big[: GALLOP_RATIO - 1], stats)
        assert stats.galloped == 0

    def test_int32_int64_mix(self):
        a = np.array([1, 5, 9], dtype=np.int32)
        b = np.arange(100, dtype=np.int64)
        assert intersect(a, b, SetOpStats()).tolist() == [1, 5, 9]
        assert difference(a, b, SetOpStats()).tolist() == []


class TestStatsAccounting:
    def test_counters_and_merge(self):
        stats = SetOpStats()
        a = np.array([1], dtype=np.int64)
        big = np.arange(64, dtype=np.int64)
        intersect(a, big, stats)
        difference(big, a, stats)
        assert stats.intersections == 1
        assert stats.differences == 1
        assert stats.total_ops == 2
        assert stats.elements_scanned == 2 * (len(a) + len(big))
        assert stats.galloped == 2
        merged = SetOpStats()
        merged.merge(stats)
        merged.merge(stats)
        assert merged.galloped == 4
        assert merged.total_ops == 4

    def test_disjoint_ranges_short_circuit(self):
        lo = np.array([1, 2, 3], dtype=np.int64)
        hi = np.array([10, 11, 12], dtype=np.int64)
        stats = SetOpStats()
        assert len(intersect(lo, hi, stats)) == 0
        assert difference(lo, hi, stats).tolist() == [1, 2, 3]
        assert stats.galloped == 0  # fast path, no kernel ran


class TestReturnedBuffersAreReadOnly:
    """Satellite regression: mutating any returned array must raise."""

    def _assert_frozen(self, out: np.ndarray) -> None:
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[0] = -1

    def test_intersect_all_paths(self):
        paths = [
            (np.array([1, 2], dtype=np.int64), np.array([2, 3], dtype=np.int64)),
            (np.array([1], dtype=np.int64), np.arange(100, dtype=np.int64)),
            (np.arange(100, dtype=np.int64), np.array([1], dtype=np.int64)),
        ]
        for a, b in paths:
            out = intersect(a, b, SetOpStats())
            if len(out):
                self._assert_frozen(out)
            assert not out.flags.writeable

    def test_difference_alias_of_input(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        out = difference(a, empty, SetOpStats())
        assert np.shares_memory(out, a)
        self._assert_frozen(out)
        # The caller's own buffer stays writable — only the alias froze.
        assert a.flags.writeable
        a[0] = 7
        assert out[0] == 7  # same storage, by design

    def test_difference_disjoint_alias(self):
        a = np.array([1, 2], dtype=np.int64)
        b = np.array([50, 60], dtype=np.int64)
        out = difference(a, b, SetOpStats())
        assert np.shares_memory(out, a)
        self._assert_frozen(out)
        assert a.flags.writeable

    def test_difference_probe_path(self):
        a = np.array([1, 2, 3, 4], dtype=np.int64)
        b = np.array([2, 4], dtype=np.int64)
        out = difference(a, b, SetOpStats())
        assert out.tolist() == [1, 3]
        self._assert_frozen(out)

    def test_bound_below_and_above(self):
        arr = np.arange(10, dtype=np.int64)
        self._assert_frozen(bound_below(arr, 4))
        self._assert_frozen(bound_above(arr, 6))
        assert arr.flags.writeable

    def test_exclude_hit_and_miss(self):
        arr = np.array([1, 3, 5, 7], dtype=np.int64)
        hit = exclude(arr, [3, 7])
        assert hit.tolist() == [1, 5]
        self._assert_frozen(hit)
        miss = exclude(arr, [2, 4])
        assert np.shares_memory(miss, arr)
        self._assert_frozen(miss)
        assert arr.flags.writeable

    def test_empty_results_frozen(self):
        empty = np.empty(0, dtype=np.int64)
        out = intersect(empty, empty, SetOpStats())
        assert not out.flags.writeable

    def test_legacy_path_is_frozen_too(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([2], dtype=np.int64)
        with use_adaptive(False):
            self._assert_frozen(intersect(a, b, SetOpStats()))
            self._assert_frozen(difference(a, b, SetOpStats()))
            self._assert_frozen(exclude(a, [2]))

    def test_readonly_input_accepted(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        a.flags.writeable = False
        b = np.empty(0, dtype=np.int64)
        out = difference(a, b, SetOpStats())
        assert out is a  # already frozen: returned as-is, no extra view


class TestAdaptiveToggle:
    def test_flag_restored_on_exit(self):
        assert setops.ADAPTIVE
        with use_adaptive(False):
            assert not setops.ADAPTIVE
            with use_adaptive(True):
                assert setops.ADAPTIVE
            assert not setops.ADAPTIVE
        assert setops.ADAPTIVE

    def test_flag_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with use_adaptive(False):
                raise RuntimeError("boom")
        assert setops.ADAPTIVE
