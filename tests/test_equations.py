"""Tests for the morphing equations: Eq. 1's count identity and solves."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import atlas
from repro.core.equations import (
    UnderivableError,
    closure_coefficients,
    evaluate,
    item_of,
    materialize,
    morph_equation,
    normalize_item,
    solve_query,
)
from repro.core.generation import skeleton, superpattern_closure
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED

from .oracle import brute_force_count
from .strategies import connected_skeletons, data_graphs


class TestItems:
    def test_item_of_edge_induced(self):
        skel, variant = item_of(atlas.FOUR_CYCLE)
        assert variant == EDGE_INDUCED
        assert skel.is_edge_induced

    def test_item_of_vertex_induced(self):
        _skel, variant = item_of(atlas.FOUR_CYCLE.vertex_induced())
        assert variant == VERTEX_INDUCED

    def test_item_of_rejects_mixed(self):
        mixed = Pattern(4, [(0, 1), (1, 2), (2, 3)], anti_edges=[(0, 2)])
        with pytest.raises(ValueError, match="mixed"):
            item_of(mixed)

    def test_clique_normalizes_to_edge_induced(self):
        assert normalize_item(Pattern.clique(4), VERTEX_INDUCED)[1] == EDGE_INDUCED

    def test_materialize_roundtrip(self):
        item = item_of(atlas.FOUR_CYCLE.vertex_induced())
        assert materialize(item).is_vertex_induced
        assert materialize(item).edges == skeleton(atlas.FOUR_CYCLE).edges


class TestClosureCoefficients:
    def test_figure7_sm_e1(self):
        coeffs = {
            atlas.pattern_name(q): c
            for q, c in closure_coefficients(atlas.TAILED_TRIANGLE)
        }
        assert coeffs == {"TT": 1, "C4C": 4, "4CL": 12}

    def test_figure7_sm_e2(self):
        coeffs = {
            atlas.pattern_name(q): c
            for q, c in closure_coefficients(atlas.FOUR_CYCLE)
        }
        assert coeffs == {"C4": 1, "C4C": 1, "4CL": 3}

    def test_clique_trivial(self):
        coeffs = closure_coefficients(Pattern.clique(4))
        assert len(coeffs) == 1 and coeffs[0][1] == 1


class TestCountIdentity:
    """Eq. 1 on real (small) data graphs, against the brute-force oracle."""

    @given(data_graphs(), connected_skeletons(max_n=4))
    @settings(max_examples=40, deadline=None)
    def test_edge_count_decomposes_over_vertex_counts(self, graph, p):
        lhs = brute_force_count(graph, p.edge_induced())
        rhs = sum(
            coeff * brute_force_count(graph, q.vertex_induced())
            for q, coeff in closure_coefficients(p)
        )
        assert lhs == rhs

    def test_fixed_example(self, tiny_graph):
        lhs = brute_force_count(tiny_graph, atlas.FOUR_CYCLE)
        rhs = (
            brute_force_count(tiny_graph, atlas.FOUR_CYCLE.vertex_induced())
            + brute_force_count(tiny_graph, atlas.CHORDAL_FOUR_CYCLE.vertex_induced())
            + 3 * brute_force_count(tiny_graph, atlas.FOUR_CLIQUE)
        )
        assert lhs == rhs


class TestSolveQuery:
    def _measure_all(self, graph, skel, variant):
        """Brute-force counts for a full closure in one variant."""
        measured = {}
        for q in superpattern_closure(skeleton(skel)):
            item = normalize_item(q, variant)
            measured[item] = brute_force_count(graph, materialize(item))
        return measured

    @given(data_graphs(), connected_skeletons(max_n=4))
    @settings(max_examples=30, deadline=None)
    def test_edge_query_from_vertex_closure(self, graph, p):
        measured = self._measure_all(graph, p, VERTEX_INDUCED)
        expr = solve_query(item_of(p.edge_induced()), set(measured))
        assert evaluate(expr, measured) == brute_force_count(graph, p.edge_induced())

    @given(data_graphs(), connected_skeletons(max_n=4))
    @settings(max_examples=30, deadline=None)
    def test_vertex_query_from_edge_closure(self, graph, p):
        measured = self._measure_all(graph, p, EDGE_INDUCED)
        expr = solve_query(item_of(p.vertex_induced()), set(measured))
        assert evaluate(expr, measured) == brute_force_count(
            graph, p.vertex_induced()
        )

    def test_direct_measurement_short_circuit(self):
        item = item_of(atlas.FOUR_CYCLE)
        assert solve_query(item, {item}) == {item: 1}

    def test_underivable_raises(self):
        with pytest.raises(UnderivableError):
            solve_query(item_of(atlas.FOUR_CYCLE), set())

    def test_partially_underivable_raises(self):
        # Only the clique measured: the lower closure nodes are unknown.
        with pytest.raises(UnderivableError):
            solve_query(
                item_of(atlas.FOUR_CYCLE),
                {normalize_item(Pattern.clique(4), EDGE_INDUCED)},
            )

    def test_appendix_a2_arithmetic(self):
        """Appendix A.2: countV(4-cycle) from the all-E alternative set is
        7 - 9 + 3*1 = 1 given the example's measured counts."""
        measured = {
            normalize_item(atlas.FOUR_CYCLE, EDGE_INDUCED): 7,
            normalize_item(atlas.CHORDAL_FOUR_CYCLE, EDGE_INDUCED): 9,
            normalize_item(atlas.FOUR_CLIQUE, EDGE_INDUCED): 1,
        }
        expr = solve_query(item_of(atlas.FOUR_CYCLE.vertex_induced()), set(measured))
        assert expr == {
            normalize_item(atlas.FOUR_CYCLE, EDGE_INDUCED): 1,
            normalize_item(atlas.CHORDAL_FOUR_CYCLE, EDGE_INDUCED): -1,
            normalize_item(atlas.FOUR_CLIQUE, EDGE_INDUCED): 3,
        }
        assert evaluate(expr, measured) == 1

    def test_mixed_variant_measured_set(self):
        """Closures may mix variants (the recursive-substitution cases)."""
        measured_items = {
            normalize_item(atlas.FOUR_CYCLE, VERTEX_INDUCED),
            normalize_item(atlas.CHORDAL_FOUR_CYCLE, EDGE_INDUCED),
            normalize_item(atlas.FOUR_CLIQUE, EDGE_INDUCED),
        }
        expr = solve_query(item_of(atlas.FOUR_CYCLE), measured_items)
        # C4E = C4V + C4CV + 3*4CL and C4CV = C4CE - 6*4CL
        assert expr == {
            normalize_item(atlas.FOUR_CYCLE, VERTEX_INDUCED): 1,
            normalize_item(atlas.CHORDAL_FOUR_CYCLE, EDGE_INDUCED): 1,
            normalize_item(atlas.FOUR_CLIQUE, EDGE_INDUCED): -3,
        }


class TestMorphEquationRendering:
    def test_sm_e1_text(self):
        text = morph_equation(atlas.TAILED_TRIANGLE)
        assert text.startswith("TT^E = ")
        assert "4*C4C^V" in text and "12*4CL" in text

    def test_sm_v1_text(self):
        text = morph_equation(atlas.FOUR_CYCLE.vertex_induced())
        assert text.startswith("C4^V = C4^E")
        assert "- C4C^V" in text and "- 3*4CL" in text
