"""Tests for the probabilistic cost model (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.core import atlas
from repro.core.aggregation import CountAggregation, MNIAggregation
from repro.core.costmodel import (
    CostModel,
    EngineCostProfile,
    GraphModel,
    matching_order,
)
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED
from repro.graph.generators import assign_labels, power_law_cluster


@pytest.fixture(scope="module")
def model(medium_graph_module):
    return GraphModel.from_graph(medium_graph_module)


@pytest.fixture(scope="module")
def medium_graph_module():
    return power_law_cluster(200, 5, 0.5, seed=2, name="cm")


class TestGraphModel:
    def test_fields_sane(self, model):
        assert model.num_vertices == 200
        assert 0.0 < model.edge_prob < 1.0
        assert model.biased_degree >= model.avg_degree  # Jensen
        assert 0.0 < model.closure_prob <= 1.0

    def test_label_fractions(self):
        g = assign_labels(power_law_cluster(100, 3, 0.3, seed=4), 4, seed=5)
        m = GraphModel.from_graph(g)
        assert abs(sum(m.label_fractions.values()) - 1.0) < 1e-9
        assert m.label_fraction(None) == 1.0
        assert m.label_fraction(0) > 0.0

    def test_unlabeled_fraction_is_one(self, model):
        assert model.label_fraction(3) == 1.0


class TestPatternCosts:
    def test_positive(self, model):
        cm = CostModel(model)
        for p in atlas.all_connected_patterns(4):
            assert cm.pattern_cost(p, EDGE_INDUCED) > 0
            assert cm.pattern_cost(p, VERTEX_INDUCED) > 0

    def test_clique_variants_equal(self, model):
        cm = CostModel(model)
        k4 = Pattern.clique(4)
        assert cm.pattern_cost(k4, EDGE_INDUCED) == cm.pattern_cost(
            k4, VERTEX_INDUCED
        )

    def test_vertex_variant_costs_more_for_counting(self, model):
        """Anti-edges add set differences; counting gains nothing back —
        the Section 7.1 direction."""
        cm = CostModel(model, aggregation=CountAggregation())
        for p in (atlas.FOUR_STAR, atlas.FOUR_PATH, atlas.TAILED_TRIANGLE):
            assert cm.pattern_cost(p, VERTEX_INDUCED) > cm.pattern_cost(
                p, EDGE_INDUCED
            )

    def test_expensive_udf_flips_the_preference(self, model):
        """With a heavy per-match UDF the fewer-match V variant wins — the
        Section 7.2 (FSM) direction."""
        cm = CostModel(model, aggregation=MNIAggregation())
        p = atlas.FOUR_STAR
        assert cm.pattern_cost(p, VERTEX_INDUCED) < cm.pattern_cost(
            p, EDGE_INDUCED
        )

    def test_filter_engines_pay_for_anti_edges(self, model):
        native = CostModel(model, EngineCostProfile(native_anti_edges=True))
        filtered = CostModel(model, EngineCostProfile(native_anti_edges=False))
        # The 4-star's edge-induced match count dwarfs its vertex-induced
        # one, so paying a filter probe per edge-induced match is clearly
        # worse than native anti-edge set differences.
        p = atlas.FOUR_STAR
        assert filtered.pattern_cost(p, VERTEX_INDUCED) > native.pattern_cost(
            p, VERTEX_INDUCED
        )

    def test_rare_labels_reduce_cost(self):
        g = assign_labels(power_law_cluster(150, 4, 0.4, seed=6), 10, skew=2.0, seed=7)
        cm = CostModel.for_graph(g)
        m = GraphModel.from_graph(g)
        rare = min(m.label_fractions, key=m.label_fractions.get)
        common = max(m.label_fractions, key=m.label_fractions.get)
        p_rare = Pattern.path(3, labels=[rare] * 3)
        p_common = Pattern.path(3, labels=[common] * 3)
        assert cm.pattern_cost(p_rare, EDGE_INDUCED) < cm.pattern_cost(
            p_common, EDGE_INDUCED
        )

    def test_unknown_variant_rejected(self, model):
        with pytest.raises(ValueError):
            CostModel(model).pattern_cost(atlas.TRIANGLE, "X")

    def test_set_cost_is_sum(self, model):
        cm = CostModel(model)
        items = [(atlas.FOUR_CYCLE, EDGE_INDUCED), (atlas.FOUR_CLIQUE, EDGE_INDUCED)]
        assert cm.pattern_set_cost(items) == pytest.approx(
            sum(cm.pattern_cost(*i) for i in items)
        )


class TestMatchEstimates:
    def test_denser_patterns_have_fewer_matches(self, model):
        cm = CostModel(model)
        assert cm.estimated_matches(
            atlas.FOUR_CLIQUE, EDGE_INDUCED
        ) < cm.estimated_matches(atlas.FOUR_CYCLE, EDGE_INDUCED)

    def test_vertex_variant_never_more(self, model):
        cm = CostModel(model)
        for p in atlas.all_connected_patterns(4):
            assert cm.estimated_matches(p, VERTEX_INDUCED) <= cm.estimated_matches(
                p, EDGE_INDUCED
            ) * (1 + 1e-9)

    def test_rank_correlation_with_reality(self, medium_graph_module):
        """The model must rank real match counts roughly correctly."""
        from repro.engines.peregrine.engine import PeregrineEngine

        cm = CostModel.for_graph(medium_graph_module)
        engine = PeregrineEngine()
        pats = list(atlas.all_connected_patterns(4))
        est = [cm.estimated_matches(p, EDGE_INDUCED) for p in pats]
        real = [engine.count(medium_graph_module, p) for p in pats]
        # Spearman-style check: order of estimates vs order of true counts.
        est_rank = sorted(range(len(pats)), key=lambda i: est[i])
        real_rank = sorted(range(len(pats)), key=lambda i: real[i])
        agreements = sum(1 for a, b in zip(est_rank, real_rank) if a == b)
        assert agreements >= len(pats) // 2


class TestMatchingOrder:
    def test_is_permutation(self):
        for p in atlas.all_connected_patterns(5):
            order = matching_order(p)
            assert sorted(order) == list(range(p.n))

    def test_connected_prefix(self):
        for p in atlas.all_connected_patterns(5):
            placed = set()
            for i, v in enumerate(matching_order(p)):
                if i:
                    assert p.neighbors(v) & placed
                placed.add(v)

    def test_starts_at_max_degree(self):
        assert matching_order(atlas.FOUR_STAR)[0] == 0


class TestOrderCost:
    def test_bad_orders_cost_more(self, model):
        """A star matched leaves-first explodes; core-first is cheap."""
        cm = CostModel(model)
        star = atlas.FOUR_STAR
        good = cm.order_cost(star, EDGE_INDUCED, [0, 1, 2, 3])
        bad = cm.order_cost(star, EDGE_INDUCED, [1, 2, 3, 0])
        assert good < bad


class TestUdfProfiling:
    """Section 5.2's UDF profiling (dummy matches, measured cost)."""

    def test_profiles_positive_cost(self, medium_graph_module):
        from repro.core.costmodel import profile_udf_cost

        cost = profile_udf_cost(
            lambda match: sum(match), atlas.TRIANGLE, medium_graph_module
        )
        assert cost > 0.0

    def test_expensive_udf_costs_more(self, medium_graph_module):
        from repro.core.costmodel import profile_udf_cost

        def cheap(match):
            return None

        def expensive(match):
            total = 0.0
            for _ in range(50):
                total += sum(match)
            return total

        cheap_cost = profile_udf_cost(cheap, atlas.TRIANGLE, medium_graph_module)
        expensive_cost = profile_udf_cost(
            expensive, atlas.TRIANGLE, medium_graph_module
        )
        assert expensive_cost > cheap_cost

    def test_exceptions_tolerated(self, medium_graph_module):
        from repro.core.costmodel import profile_udf_cost

        def flaky(match):
            raise RuntimeError("dummy matches may be nonsense")

        cost = profile_udf_cost(flaky, atlas.TRIANGLE, medium_graph_module)
        assert cost >= 0.0

    def test_deterministic_dummy_matches(self, medium_graph_module):
        from repro.core.costmodel import profile_udf_cost

        seen: list = []

        def record(match):
            seen.append(match)

        profile_udf_cost(record, atlas.TRIANGLE, medium_graph_module, samples=10, seed=4)
        first = list(seen)
        seen.clear()
        profile_udf_cost(record, atlas.TRIANGLE, medium_graph_module, samples=10, seed=4)
        assert seen == first
        assert all(len(set(m)) == 3 for m in first)  # injective dummies
