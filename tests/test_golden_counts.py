"""Golden-count regression tests on the MiCo stand-in.

These literals were produced by this library (all four engines agree and
small-graph slices were verified against the brute-force oracle); they
pin the exact behaviour of the kernels, symmetry breaking and the
deterministic dataset generators. Any change to counts here is a
correctness regression or an intentional generator change — either way
it should be loud.
"""

from __future__ import annotations

import pytest

from repro.core import atlas
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datasets import load

GOLDEN_MICO = {
    ("triangle", "E"): 1661,
    ("triangle", "V"): 1661,
    ("3P", "E"): 38698,
    ("3P", "V"): 33715,
    ("4S", "E"): 433220,
    ("4S", "V"): 321753,
    ("TT", "E"): 127945,
    ("TT", "V"): 96349,
    ("C4", "E"): 13372,
    ("C4", "V"): 5473,
    ("C4C", "E"): 8919,
    ("C4C", "V"): 6879,
    ("4CL", "E"): 340,
    ("4CL", "V"): 340,
    ("4P", "E"): 684750,
    ("4P", "V"): 424806,
}

#: The Eq. 1 identities over the golden numbers (independent arithmetic).
def test_golden_numbers_satisfy_morphing_equations():
    g = lambda name, variant: GOLDEN_MICO[(name, variant)]
    # [SM-E2]: C4^E = C4^V + C4C^V + 3*4CL
    assert g("C4", "E") == g("C4", "V") + g("C4C", "V") + 3 * g("4CL", "E")
    # [SM-E1]: TT^E = TT^V + 4*C4C^V + 12*4CL
    assert g("TT", "E") == g("TT", "V") + 4 * g("C4C", "V") + 12 * g("4CL", "E")
    # 4S^E = 4S^V + TT^V + 2*C4C^V + 4*4CL
    assert g("4S", "E") == g("4S", "V") + g("TT", "V") + 2 * g("C4C", "V") + 4 * g("4CL", "E")
    # 4P^E = 4P^V + 2*TT^V + 4*C4^V + 6*C4C^V + 12*4CL
    # (a 4-path occurs 4 times in a 4-cycle and 6 times in a chordal one)
    assert g("4P", "E") == (
        g("4P", "V") + 2 * g("TT", "V") + 4 * g("C4", "V") + 6 * g("C4C", "V")
        + 12 * g("4CL", "E")
    )
    # C4C^E = C4C^V + 6*4CL
    assert g("C4C", "E") == g("C4C", "V") + 6 * g("4CL", "E")
    # triangles and cliques are variant-agnostic
    assert g("triangle", "E") == g("triangle", "V")
    assert g("4CL", "E") == g("4CL", "V")


@pytest.mark.parametrize(
    "engine_cls", [PeregrineEngine, AutoZeroEngine, GraphPiEngine, BigJoinEngine]
)
@pytest.mark.parametrize("name,variant", sorted(GOLDEN_MICO))
def test_engines_reproduce_golden_counts(engine_cls, name, variant):
    graph = load("mico")
    pattern = atlas.NAMED_PATTERNS[name]
    if variant == "V":
        pattern = pattern.vertex_induced()
    assert engine_cls().count(graph, pattern) == GOLDEN_MICO[(name, variant)]


def test_dataset_generator_stability():
    """The synthetic suite is deterministic; these stats are pinned."""
    mico = load("mico")
    assert (mico.num_vertices, mico.num_edges) == (350, 2064)
    mag = load("mag")
    assert (mag.num_vertices, mag.num_edges) == (900, 3584)
    products = load("products")
    assert (products.num_vertices, products.num_edges) == (1400, 12519)
