"""Tests for Algorithm 1 (alternative pattern set selection)."""

from __future__ import annotations

import pytest

from repro.core import atlas
from repro.core.aggregation import CountAggregation, MNIAggregation
from repro.core.costmodel import CostModel, EngineCostProfile, GraphModel
from repro.core.equations import item_of, normalize_item, solve_query
from repro.core.generation import skeleton, superpattern_closure
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED
from repro.core.selection import legal_variants, select_alternative_patterns
from repro.graph.generators import power_law_cluster


@pytest.fixture(scope="module")
def graph():
    return power_law_cluster(200, 5, 0.5, seed=2, name="sel")


@pytest.fixture(scope="module")
def count_model(graph):
    return CostModel.for_graph(graph, aggregation=CountAggregation())


class TestLegality:
    def test_counting_allows_both_variants(self):
        assert set(legal_variants(CountAggregation())) == {
            EDGE_INDUCED,
            VERTEX_INDUCED,
        }

    def test_mni_restricted_to_vertex_induced(self):
        assert legal_variants(MNIAggregation()) == (VERTEX_INDUCED,)

    def test_mni_vertex_query_never_morphed(self, count_model, graph):
        agg = MNIAggregation()
        cm = CostModel.for_graph(graph, aggregation=agg)
        query = atlas.FOUR_CYCLE.vertex_induced()
        result = select_alternative_patterns([query], cm, agg)
        assert not result.morphed[query]
        assert item_of(query) in result.measured

    def test_mni_alternatives_all_vertex_induced(self, graph):
        agg = MNIAggregation()
        cm = CostModel.for_graph(graph, aggregation=agg)
        query = atlas.FOUR_STAR  # edge-induced, heavy UDF -> should morph
        result = select_alternative_patterns([query], cm, agg)
        if result.morphed[query]:
            for skel, variant in result.measured:
                assert variant == VERTEX_INDUCED or skel.is_clique


class TestDerivability:
    """Whatever Algorithm 1 returns, every query must be reconstructible."""

    @pytest.mark.parametrize(
        "queries",
        [
            [atlas.FOUR_CYCLE.vertex_induced()],
            [atlas.FOUR_STAR.vertex_induced(), atlas.FOUR_PATH.vertex_induced()],
            list(atlas.motif_patterns(4)),
            [atlas.TAILED_TRIANGLE, atlas.FOUR_CYCLE],
        ],
    )
    def test_counting_queries_solvable(self, queries, count_model):
        result = select_alternative_patterns(queries, count_model)
        for q in queries:
            solve_query(item_of(q), result.measured)  # must not raise

    def test_mni_queries_covered(self, graph):
        agg = MNIAggregation()
        cm = CostModel.for_graph(graph, aggregation=agg)
        queries = [atlas.FOUR_STAR, atlas.FOUR_PATH]
        result = select_alternative_patterns(queries, cm, agg)
        for q in queries:
            if result.morphed[q]:
                for sup in superpattern_closure(skeleton(q)):
                    assert normalize_item(sup, VERTEX_INDUCED) in result.measured


class TestSelectionBehaviour:
    def test_motif_counting_morphs_to_edge_induced(self, count_model):
        """The Section 7.1 signature decision: V-motifs -> E variants."""
        queries = list(atlas.motif_patterns(4))
        result = select_alternative_patterns(queries, count_model)
        assert all(result.morphed[q] or q.is_clique for q in queries)
        variants = {v for _s, v in result.measured}
        assert variants == {EDGE_INDUCED}
        # Best case: no pattern beyond the 6 motifs is measured.
        assert len(result.measured) == 6

    def test_converges(self, count_model):
        result = select_alternative_patterns(
            list(atlas.motif_patterns(4)), count_model
        )
        assert result.rounds < 64

    def test_estimated_cost_never_worse(self, count_model):
        for queries in ([atlas.FOUR_PATH.vertex_induced()], list(atlas.motif_patterns(3))):
            result = select_alternative_patterns(queries, count_model)
            assert result.estimated_cost <= result.estimated_query_cost * (1 + 1e-9)

    def test_margin_one_is_paper_greedy(self, count_model):
        """margin=1.0 accepts any predicted improvement."""
        result = select_alternative_patterns(
            [atlas.FOUR_PATH.vertex_induced()], count_model, margin=1.0
        )
        assert result.measured

    def test_margin_zero_blocks_everything(self, count_model):
        queries = list(atlas.motif_patterns(4))
        result = select_alternative_patterns(queries, count_model, margin=0.0)
        assert not any(result.morphed.values())
        assert result.measured == frozenset(item_of(q) for q in queries)

    def test_no_dead_patterns(self, count_model):
        """Pruning: every measured item appears in some query's solve."""
        queries = [atlas.FOUR_CYCLE.vertex_induced(), atlas.FOUR_STAR.vertex_induced()]
        result = select_alternative_patterns(queries, count_model)
        used = set()
        for q in queries:
            used.update(solve_query(item_of(q), result.measured))
        assert used == set(result.measured)


class TestSyntheticCosts:
    """Drive Algorithm 1 with hand-crafted costs (appendix-style tables)."""

    class StubModel(CostModel):
        def __init__(self, table):
            super().__init__(
                GraphModel(
                    num_vertices=100, edge_prob=0.05, avg_degree=5,
                    biased_degree=10, closure_prob=0.2, high_degree_threshold=10,
                ),
                EngineCostProfile(),
                CountAggregation(),
            )
            self.table = table

        def pattern_cost(self, skel: Pattern, variant: str) -> float:
            name = atlas.pattern_name(skel)
            if skel.is_clique:
                variant = EDGE_INDUCED
            return self.table[(name, variant)]

    def test_appendix_a2_style_decision(self):
        """Cheap E-closure beats an expensive V query -> morph happens."""
        table = {
            ("C4", "E"): 10.0, ("C4", "V"): 120.0,
            ("C4C", "E"): 5.0, ("C4C", "V"): 90.0,
            ("4CL", "E"): 5.0,
        }
        result = select_alternative_patterns(
            [atlas.FOUR_CYCLE.vertex_induced()], self.StubModel(table), margin=1.0
        )
        assert result.morphed[atlas.FOUR_CYCLE.vertex_induced()]
        assert result.measured == frozenset(
            {
                normalize_item(atlas.FOUR_CYCLE, EDGE_INDUCED),
                normalize_item(atlas.CHORDAL_FOUR_CYCLE, EDGE_INDUCED),
                normalize_item(atlas.FOUR_CLIQUE, EDGE_INDUCED),
            }
        )

    def test_expensive_closure_blocks_morph(self):
        table = {
            ("C4", "E"): 100.0, ("C4", "V"): 20.0,
            ("C4C", "E"): 80.0, ("C4C", "V"): 70.0,
            ("4CL", "E"): 50.0,
        }
        query = atlas.FOUR_CYCLE.vertex_induced()
        result = select_alternative_patterns([query], self.StubModel(table), margin=1.0)
        assert not result.morphed[query]
        assert result.measured == frozenset({item_of(query)})

    def test_overlap_makes_combined_morph_profitable(self):
        """The Section 5 motivating case: two patterns individually not
        worth morphing, but their alternative sets overlap."""
        table = {
            ("C4", "E"): 40.0, ("C4", "V"): 50.0,
            ("TT", "E"): 40.0, ("TT", "V"): 50.0,
            ("C4C", "E"): 30.0, ("C4C", "V"): 100.0,
            ("4CL", "E"): 25.0,
        }
        # Individually: closure(C4) = 40+30+25 = 95 > 50 -> no morph.
        single = select_alternative_patterns(
            [atlas.FOUR_CYCLE.vertex_induced()], self.StubModel(table), margin=1.0
        )
        assert not single.morphed[atlas.FOUR_CYCLE.vertex_induced()]
        # Together: closure(C4) ∪ closure(TT) = 40+40+30+25 = 135 > 100?
        # Both closures share C4C and 4CL, so the pair costs 135 vs 100...
        # still unprofitable; shrink the shared-superpattern costs.
        table2 = dict(table)
        table2[("C4C", "E")] = 5.0
        table2[("4CL", "E")] = 5.0
        pair = select_alternative_patterns(
            [atlas.FOUR_CYCLE.vertex_induced(), atlas.TAILED_TRIANGLE.vertex_induced()],
            self.StubModel(table2),
            margin=1.0,
        )
        assert all(pair.morphed.values())
