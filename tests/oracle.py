"""Independent brute-force reference implementations for testing.

Everything here is deliberately written with a different strategy from
the library under test: matches are found by enumerating vertex
combinations and checking all permutations directly (no plans, no set
operations, no symmetry breaking), so agreement with the engines is
meaningful evidence of correctness. Only usable on small graphs.
"""

from __future__ import annotations

from itertools import combinations, permutations

from repro.core.pattern import Pattern, normalize_edge
from repro.graph.datagraph import DataGraph


def brute_force_matches(
    graph: DataGraph, pattern: Pattern
) -> set[tuple[tuple[int, int], ...]]:
    """All unique matches as canonical occurrence keys.

    An occurrence is identified by its sorted image edge list plus the
    (sorted) vertex set; automorphic re-assignments collapse to the same
    key. Respects labels and anti-edges.
    """
    occurrences: set[tuple[tuple[int, int], ...]] = set()
    for combo in combinations(range(graph.num_vertices), pattern.n):
        for perm in permutations(combo):
            # perm[u] is the data vertex assigned to pattern vertex u.
            if _is_match(graph, pattern, perm):
                key = tuple(
                    sorted(
                        normalize_edge(perm[u], perm[v]) for u, v in pattern.edges
                    )
                )
                occurrences.add((("verts",) + tuple(sorted(perm)), key))  # type: ignore[arg-type]
    return occurrences


def _is_match(graph: DataGraph, pattern: Pattern, assignment) -> bool:
    for v in range(pattern.n):
        want = pattern.label(v)
        if want is not None and graph.is_labeled and graph.label(assignment[v]) != want:
            return False
    for u, v in pattern.edges:
        if not graph.has_edge(assignment[u], assignment[v]):
            return False
    for u, v in pattern.anti_edges:
        if graph.has_edge(assignment[u], assignment[v]):
            return False
    return True


def brute_force_count(graph: DataGraph, pattern: Pattern) -> int:
    """Number of unique matches (occurrences, not embeddings)."""
    return len(brute_force_matches(graph, pattern))


def brute_force_match_tuples(
    graph: DataGraph, pattern: Pattern
) -> list[tuple[int, ...]]:
    """One representative assignment tuple per occurrence."""
    seen: set = set()
    out: list[tuple[int, ...]] = []
    for combo in combinations(range(graph.num_vertices), pattern.n):
        for perm in permutations(combo):
            if _is_match(graph, pattern, perm):
                key = (
                    tuple(sorted(perm)),
                    tuple(
                        sorted(
                            normalize_edge(perm[u], perm[v])
                            for u, v in pattern.edges
                        )
                    ),
                )
                if key not in seen:
                    seen.add(key)
                    out.append(tuple(perm))
    return out


def brute_force_mni(
    graph: DataGraph, pattern: Pattern
) -> tuple[frozenset[int], ...]:
    """MNI table (one vertex set per pattern vertex) over all embeddings."""
    columns: list[set[int]] = [set() for _ in range(pattern.n)]
    for combo in combinations(range(graph.num_vertices), pattern.n):
        for perm in permutations(combo):
            if _is_match(graph, pattern, perm):
                for u in range(pattern.n):
                    columns[u].add(perm[u])
    if all(not c for c in columns):
        return ()  # the MNI zero: no matches, no table
    return tuple(frozenset(c) for c in columns)


def brute_force_mni_support(graph: DataGraph, pattern: Pattern) -> int:
    table = brute_force_mni(graph, pattern)
    if not table or any(len(c) == 0 for c in table):
        return 0
    return min(len(c) for c in table)
