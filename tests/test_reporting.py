"""Tests for benchmark reporting (charts, tables) and plan description output."""

from __future__ import annotations

from repro.bench.reporting import breakdown_chart, comparison_table, speedup_chart
from repro.core.atlas import CHORDAL_FOUR_CYCLE, FOUR_CYCLE, FOUR_STAR
from repro.engines.plan import ExplorationPlan


class TestSpeedupChart:
    def test_rows_render(self):
        chart = speedup_chart(
            [("4-MC/MI", 2.5), ("3-MC/MI", 1.6), ("pV1", 0.9)], title="Fig 12a"
        )
        assert "Fig 12a" in chart
        assert "2.50x" in chart and "0.90x" in chart
        assert "1.0x" in chart  # parity tick legend

    def test_bars_monotone_in_speedup(self):
        chart = speedup_chart([("big", 4.0), ("small", 1.0)])
        lines = chart.splitlines()
        big_bar = lines[0].count("█")
        small_bar = lines[1].count("█")
        assert big_bar > small_bar

    def test_empty(self):
        assert "(no rows)" in speedup_chart([], title="x")


class TestBreakdownChart:
    def test_categories_fill(self):
        chart = breakdown_chart(
            [
                ("FSM", {"setops": 20.0, "udf": 70.0, "other": 10.0, "total": 5.0}),
                ("SC", {"setops": 90.0, "other": 10.0, "total": 1.0}),
            ]
        )
        assert "legend" in chart
        assert "▒" in chart  # UDF fill appears for FSM
        assert "5.00s" in chart

    def test_empty(self):
        assert breakdown_chart([]) == "(no rows)"


class TestComparisonTable:
    def test_alignment(self):
        table = comparison_table(
            ["workload", "speedup"], [["4-MC", 2.5], ["longer-name", 1.0]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("workload")
        assert set(lines[1]) <= {"-", " "}

    def test_empty(self):
        assert comparison_table(["a", "b"], []) == "a,b"


class TestPlanDescribe:
    def test_star_plan(self):
        text = ExplorationPlan.build(FOUR_STAR).describe()
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("← V")
        assert "N(v0)" in lines[1]
        assert "> v1" in lines[2] or "< v" in lines[2]  # symmetry bounds

    def test_vertex_induced_shows_differences(self):
        text = ExplorationPlan.build(FOUR_CYCLE.vertex_induced()).describe()
        assert "∖ N(" in text

    def test_intersections_shown(self):
        text = ExplorationPlan.build(CHORDAL_FOUR_CYCLE).describe()
        assert "∩" in text

    def test_labels_shown(self):
        from repro.core.pattern import Pattern

        p = Pattern.path(3, labels=[1, 2, 1])
        text = ExplorationPlan.build(p).describe()
        assert "label=" in text
