"""Unit tests for repro.core.pattern."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.pattern import Pattern, normalize_edge

from .strategies import patterns, permutations_of


class TestConstruction:
    def test_basic(self):
        p = Pattern(3, [(0, 1), (1, 2)])
        assert p.n == 3
        assert p.num_edges == 2
        assert p.has_edge(1, 0)
        assert not p.has_edge(0, 2)

    def test_edge_normalization(self):
        p = Pattern(3, [(1, 0), (0, 1), (2, 1)])
        assert p.num_edges == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Pattern(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Pattern(2, [(0, 5)])

    def test_overlapping_anti_edge_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            Pattern(3, [(0, 1)], anti_edges=[(0, 1)])

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            Pattern(0, [])

    def test_label_length_checked(self):
        with pytest.raises(ValueError, match="labels"):
            Pattern(3, [(0, 1)], labels=[1, 2])

    def test_all_none_labels_mean_unlabeled(self):
        p = Pattern(2, [(0, 1)], labels=[None, None])
        assert not p.is_labeled
        assert p.labels is None


class TestShapes:
    def test_clique(self):
        k4 = Pattern.clique(4)
        assert k4.num_edges == 6
        assert k4.is_clique
        assert k4.is_edge_induced and k4.is_vertex_induced

    def test_cycle(self):
        c5 = Pattern.cycle(5)
        assert c5.num_edges == 5
        assert all(c5.degree(v) == 2 for v in range(5))

    def test_star(self):
        s = Pattern.star(5)
        assert s.degree(0) == 4
        assert all(s.degree(v) == 1 for v in range(1, 5))

    def test_path(self):
        p = Pattern.path(4)
        assert p.num_edges == 3
        assert p.degree(0) == p.degree(3) == 1

    def test_shape_minimums(self):
        with pytest.raises(ValueError):
            Pattern.cycle(2)
        with pytest.raises(ValueError):
            Pattern.star(1)
        with pytest.raises(ValueError):
            Pattern.path(1)


class TestVariants:
    def test_vertex_induced_fills_complement(self):
        p = Pattern.cycle(4).vertex_induced()
        assert len(p.anti_edges) == 2
        assert p.is_vertex_induced

    def test_edge_induced_strips_anti_edges(self):
        p = Pattern.cycle(4).vertex_induced().edge_induced()
        assert not p.anti_edges
        assert p.is_edge_induced

    def test_clique_is_both(self):
        k = Pattern.clique(4)
        assert k.vertex_induced() is k  # no anti-edges to add
        assert k.edge_induced() is k

    def test_variants_share_edges(self):
        p = Pattern.cycle(5)
        assert p.vertex_induced().edges == p.edges

    @given(patterns(max_n=5))
    def test_vertex_induced_idempotent(self, p: Pattern):
        v = p.vertex_induced()
        assert v.vertex_induced() == v
        assert v.edges | v.anti_edges == frozenset(
            normalize_edge(a, b)
            for a in range(p.n)
            for b in range(a + 1, p.n)
        )


class TestRelabel:
    def test_identity(self):
        p = Pattern(3, [(0, 1), (1, 2)], labels=[7, 8, 9])
        assert p.relabel([0, 1, 2]) == p

    def test_swap(self):
        p = Pattern(3, [(0, 1)])
        q = p.relabel([2, 1, 0])
        assert q.has_edge(2, 1)
        assert not q.has_edge(0, 1)

    def test_labels_follow_vertices(self):
        p = Pattern(3, [(0, 1)], labels=[10, 20, 30])
        q = p.relabel([1, 2, 0])
        assert q.label(1) == 10
        assert q.label(2) == 20
        assert q.label(0) == 30

    def test_bad_permutation_rejected(self):
        with pytest.raises(ValueError):
            Pattern(3, [(0, 1)]).relabel([0, 0, 1])

    @given(patterns(max_n=5), st.data())
    def test_degree_sequence_invariant(self, p: Pattern, data):
        perm = data.draw(permutations_of(p.n))
        q = p.relabel(perm)
        assert sorted(p.degree(v) for v in range(p.n)) == sorted(
            q.degree(v) for v in range(q.n)
        )
        assert q.num_edges == p.num_edges
        assert len(q.anti_edges) == len(p.anti_edges)


class TestQueries:
    def test_neighbors(self):
        p = Pattern(4, [(0, 1), (0, 2), (2, 3)])
        assert p.neighbors(0) == {1, 2}
        assert p.neighbors(3) == {2}

    def test_anti_neighbors(self):
        p = Pattern.cycle(4).vertex_induced()
        assert p.anti_neighbors(0) == {2}

    def test_non_edges(self):
        p = Pattern(4, [(0, 1)], anti_edges=[(2, 3)])
        assert normalize_edge(0, 2) in p.non_edges
        assert normalize_edge(2, 3) not in p.non_edges
        assert normalize_edge(0, 1) not in p.non_edges

    def test_connectivity(self):
        assert Pattern.path(5).is_connected
        assert not Pattern(4, [(0, 1), (2, 3)]).is_connected
        assert Pattern(1, []).is_connected

    def test_with_edge(self):
        p = Pattern.cycle(4).vertex_induced()
        q = p.with_edge(0, 2)
        assert q.has_edge(0, 2)
        assert not q.has_anti_edge(0, 2)
        with pytest.raises(ValueError):
            q.with_edge(0, 2)

    def test_unlabeled_strips(self):
        p = Pattern(2, [(0, 1)], labels=[1, 2])
        assert not p.unlabeled().is_labeled


class TestDunder:
    def test_equality_and_hash(self):
        a = Pattern(3, [(0, 1), (1, 2)])
        b = Pattern(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_by_anti_edges(self):
        a = Pattern.cycle(4)
        assert a != a.vertex_induced()

    def test_inequality_by_labels(self):
        a = Pattern(2, [(0, 1)], labels=[1, 1])
        b = Pattern(2, [(0, 1)], labels=[1, 2])
        assert a != b

    def test_repr_roundtrip_info(self):
        p = Pattern(3, [(0, 1)], anti_edges=[(1, 2)], labels=[1, 2, 3])
        text = repr(p)
        assert "anti" in text and "labels" in text

    def test_usable_in_sets(self):
        s = {Pattern.clique(3), Pattern.clique(3), Pattern.path(3)}
        assert len(s) == 2
