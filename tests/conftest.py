"""Shared fixtures: small deterministic graphs sized for the brute-force
oracle (the oracle enumerates vertex permutations, so ~30 vertices max)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.datagraph import DataGraph
from repro.graph.generators import assign_labels, erdos_renyi, power_law_cluster


@pytest.fixture(autouse=True)
def _shared_memory_leak_probe():
    """Every test must leave no live shared-memory segment behind.

    The probe reclaims whatever it reports, so a single leaking test
    fails alone instead of cascading into the rest of the suite.
    """
    yield
    from repro.engines.execution import assert_no_leaked_segments

    assert_no_leaked_segments()


@pytest.fixture(scope="session")
def tiny_graph() -> DataGraph:
    """8 vertices, hand-built, with triangles / cycles / a near-clique."""
    edges = [
        (0, 1), (0, 2), (1, 2),          # triangle
        (2, 3), (3, 4), (4, 5), (2, 5),  # 4-cycle hanging off it
        (3, 5),                          # chord
        (5, 6), (6, 7), (5, 7), (4, 6),  # extra tangle
    ]
    return DataGraph(8, edges, name="tiny")


@pytest.fixture(scope="session")
def small_graph() -> DataGraph:
    """~25-vertex clustered random graph for oracle comparisons."""
    return power_law_cluster(25, 3, 0.5, seed=5, name="small")


@pytest.fixture(scope="session")
def small_labeled_graph() -> DataGraph:
    """Small labeled graph (3 labels) for FSM / labeled-pattern tests."""
    g = power_law_cluster(22, 3, 0.5, seed=9, name="small-labeled")
    return assign_labels(g, 3, skew=0.8, seed=10)


@pytest.fixture(scope="session")
def sparse_graph() -> DataGraph:
    """Sparser ER graph — exercises low-clustering paths."""
    return erdos_renyi(30, 0.12, seed=3, name="sparse")


@pytest.fixture(scope="session")
def medium_graph() -> DataGraph:
    """A few hundred vertices — too big for the oracle, fine for engines."""
    return power_law_cluster(150, 4, 0.4, seed=21, name="medium")


@pytest.fixture(scope="session")
def vertex_weights(small_graph) -> np.ndarray:
    rng = np.random.default_rng(13)
    return rng.normal(size=small_graph.num_vertices)
