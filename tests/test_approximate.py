"""Tests for the approximate-counting extension."""

from __future__ import annotations

import pytest

from repro.apps.approximate import (
    ApproximateCount,
    approximate_count,
    error_latency_profile,
)
from repro.core.atlas import FOUR_CYCLE, TRIANGLE
from repro.engines.peregrine.engine import PeregrineEngine


class TestEstimator:
    def test_full_probability_is_exact(self, medium_graph):
        exact = PeregrineEngine().count(medium_graph, TRIANGLE)
        approx = approximate_count(medium_graph, TRIANGLE, sample_prob=1.0, trials=1)
        assert approx.estimate == exact
        assert approx.std_error == float("inf")  # one trial, no spread

    def test_estimate_near_exact(self, medium_graph):
        exact = PeregrineEngine().count(medium_graph, TRIANGLE)
        approx = approximate_count(
            medium_graph, TRIANGLE, sample_prob=0.7, trials=12, seed=3
        )
        assert abs(approx.estimate - exact) / exact < 0.5

    def test_deterministic_given_seed(self, medium_graph):
        a = approximate_count(medium_graph, TRIANGLE, 0.5, trials=3, seed=9)
        b = approximate_count(medium_graph, TRIANGLE, 0.5, trials=3, seed=9)
        assert a.estimate == b.estimate

    def test_morphing_path_works(self, medium_graph):
        approx = approximate_count(
            medium_graph,
            FOUR_CYCLE.vertex_induced(),
            sample_prob=0.8,
            trials=3,
            morph=True,
            seed=5,
        )
        assert approx.estimate >= 0.0

    def test_tiny_samples_yield_zero(self, small_graph):
        approx = approximate_count(
            small_graph, TRIANGLE, sample_prob=0.01, trials=3, seed=1
        )
        assert approx.estimate == 0.0

    def test_validation(self, small_graph):
        with pytest.raises(ValueError):
            approximate_count(small_graph, TRIANGLE, sample_prob=0.0)
        with pytest.raises(ValueError):
            approximate_count(small_graph, TRIANGLE, trials=0)

    def test_confidence_interval_nonnegative(self):
        approx = ApproximateCount(
            estimate=10.0, std_error=20.0, trials=3, sample_prob=0.5
        )
        lo, hi = approx.confidence_interval()
        assert lo == 0.0 and hi > 10.0


class TestErrorLatencyProfile:
    def test_profile_rows(self, medium_graph):
        rows = error_latency_profile(
            medium_graph, TRIANGLE, probabilities=[0.4, 0.8], trials=3, seed=2
        )
        assert len(rows) == 2
        for row in rows:
            assert row["exact"] > 0
            assert row["seconds"] > 0
            assert row["relative_error"] >= 0.0

    def test_unbiasedness_over_many_trials(self, medium_graph):
        """The mean over many sampled trials converges on the exact count."""
        exact = PeregrineEngine().count(medium_graph, TRIANGLE)
        approx = approximate_count(
            medium_graph, TRIANGLE, sample_prob=0.6, trials=30, seed=7
        )
        # Within 3 standard errors (generous; the estimator is unbiased).
        assert abs(approx.estimate - exact) <= max(3 * approx.std_error, 0.2 * exact)
