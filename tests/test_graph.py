"""Tests for the data-graph substrate: storage, IO, generators, partition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.datagraph import DataGraph
from repro.graph.datasets import DATASET_CODES, load, summary_table
from repro.graph.generators import (
    assign_labels,
    barabasi_albert,
    erdos_renyi,
    power_law_cluster,
    random_weights,
)
from repro.graph.io import from_edges, load_edge_list, save_edge_list
from repro.graph.partition import edge_cut, ldg_partition, partition_subgraphs


class TestDataGraph:
    def test_basic(self):
        g = DataGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.degree(1) == 2
        assert g.has_edge(2, 1)
        assert not g.has_edge(0, 3)

    def test_duplicate_and_self_loop_edges_cleaned(self):
        g = DataGraph(3, [(0, 1), (1, 0), (0, 1), (2, 2)])
        assert g.num_edges == 1

    def test_neighbors_sorted(self):
        g = DataGraph(5, [(3, 0), (3, 4), (3, 1)])
        assert list(g.neighbors(3)) == [0, 1, 4]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DataGraph(2, [(0, 5)])

    def test_labels(self):
        g = DataGraph(3, [(0, 1)], labels=[5, 5, 7])
        assert g.is_labeled
        assert g.label(2) == 7
        assert set(g.vertices_by_label) == {5, 7}
        assert list(g.vertices_by_label[5]) == [0, 1]
        assert g.num_labels == 2

    def test_label_length_checked(self):
        with pytest.raises(ValueError):
            DataGraph(3, [(0, 1)], labels=[1, 2])

    def test_degree_stats(self):
        g = DataGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree == 3
        assert g.avg_degree == pytest.approx(1.5)
        assert g.high_degree_threshold(50.0) <= 3

    def test_subgraph(self):
        g = DataGraph(6, [(0, 1), (1, 2), (2, 3), (4, 5)], labels=[0, 1, 2, 3, 4, 5])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert sub.label(0) == 1  # vertex 1 remapped to 0

    def test_edges_iteration(self):
        g = DataGraph(3, [(2, 1), (0, 1)])
        assert set(g.edges()) == {(1, 2), (0, 1)}


class TestIO:
    def test_roundtrip(self, tmp_path):
        g = power_law_cluster(40, 3, 0.4, seed=1, name="io")
        g = assign_labels(g, 4, seed=2)
        epath, lpath = tmp_path / "g.txt", tmp_path / "g.labels"
        save_edge_list(g, epath, lpath)
        loaded = load_edge_list(epath, lpath)
        assert loaded.num_vertices == g.num_vertices
        assert loaded.num_edges == g.num_edges
        assert set(loaded.edges()) == set(g.edges())
        assert [loaded.label(v) for v in range(loaded.num_vertices)] == [
            g.label(v) for v in range(g.num_vertices)
        ]

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n% other\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("42\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_save_labels_requires_labeled(self, tmp_path):
        g = from_edges([(0, 1)])
        with pytest.raises(ValueError):
            save_edge_list(g, tmp_path / "g.txt", tmp_path / "g.labels")

    def test_from_edges_infers_size(self):
        g = from_edges([(0, 5), (2, 3)])
        assert g.num_vertices == 6


class TestGenerators:
    def test_deterministic(self):
        a = power_law_cluster(60, 3, 0.4, seed=9)
        b = power_law_cluster(60, 3, 0.4, seed=9)
        assert set(a.edges()) == set(b.edges())

    def test_seed_changes_graph(self):
        a = power_law_cluster(60, 3, 0.4, seed=9)
        b = power_law_cluster(60, 3, 0.4, seed=10)
        assert set(a.edges()) != set(b.edges())

    def test_erdos_renyi_density(self):
        g = erdos_renyi(100, 0.1, seed=1)
        expected = 0.1 * 100 * 99 / 2
        assert 0.6 * expected < g.num_edges < 1.4 * expected

    def test_barabasi_albert_heavy_tail(self):
        g = barabasi_albert(300, 3, seed=2)
        assert g.max_degree > 4 * g.avg_degree

    def test_ba_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert(5, 5)

    def test_power_law_cluster_has_triangles(self):
        from repro.core.atlas import TRIANGLE
        from repro.engines.peregrine.engine import PeregrineEngine

        clustered = power_law_cluster(150, 4, 0.8, seed=3)
        plain = barabasi_albert(150, 4, seed=3)
        engine = PeregrineEngine()
        assert engine.count(clustered, TRIANGLE) > engine.count(plain, TRIANGLE)

    def test_assign_labels_skew(self):
        g = power_law_cluster(400, 3, 0.3, seed=4)
        labeled = assign_labels(g, 5, skew=2.0, seed=5)
        counts = sorted(
            (len(vs) for vs in labeled.vertices_by_label.values()), reverse=True
        )
        assert counts[0] > 2 * counts[-1]

    def test_random_weights_shape(self):
        g = erdos_renyi(30, 0.2, seed=0)
        w = random_weights(g, seed=1)
        assert w.shape == (30,)


class TestDatasets:
    def test_all_codes_load(self):
        for code in DATASET_CODES:
            g = load(code)
            assert g.num_vertices > 0 and g.num_edges > 0

    def test_relative_size_ordering(self):
        """MI < MG < PR < OK < FR, as in Figure 11b."""
        sizes = [load(c).num_vertices for c in ("MI", "MG", "PR", "OK", "FR")]
        assert sizes == sorted(sizes)

    def test_label_cardinalities(self):
        assert load("MI").is_labeled
        assert load("MG").is_labeled
        assert load("PR").is_labeled
        assert not load("OK").is_labeled
        assert not load("FR").is_labeled
        assert load("MG").num_labels > load("PR").num_labels > 1

    def test_memoized(self):
        assert load("MI") is load("mico")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            load("nope")

    def test_summary_table(self):
        rows = summary_table()
        assert len(rows) == 5
        assert {r["code"] for r in rows} == set(DATASET_CODES)


class TestPartition:
    def test_assignment_covers_all(self):
        g = power_law_cluster(120, 3, 0.4, seed=6)
        assignment = ldg_partition(g, 4, seed=1)
        assert len(assignment) == 120
        assert set(assignment) <= {0, 1, 2, 3}

    def test_balance(self):
        g = power_law_cluster(200, 3, 0.4, seed=7)
        assignment = ldg_partition(g, 4, seed=1)
        sizes = [assignment.count(i) for i in range(4)]
        assert max(sizes) <= 2 * min(sizes) + 5

    def test_single_part(self):
        g = erdos_renyi(20, 0.2, seed=1)
        assert set(ldg_partition(g, 1)) == {0}

    def test_invalid_parts(self):
        g = erdos_renyi(10, 0.2, seed=1)
        with pytest.raises(ValueError):
            ldg_partition(g, 0)

    def test_subgraphs_drop_cut_edges(self):
        g = power_law_cluster(150, 3, 0.4, seed=8)
        parts = partition_subgraphs(g, 3, seed=2)
        assignment = ldg_partition(g, 3, seed=2)
        kept = sum(p.num_edges for p in parts)
        assert kept == g.num_edges - edge_cut(g, assignment)
        assert sum(p.num_vertices for p in parts) == g.num_vertices

    def test_ldg_beats_random_cut(self):
        g = power_law_cluster(200, 4, 0.5, seed=9)
        rng = np.random.default_rng(0)
        random_assignment = rng.integers(0, 4, g.num_vertices).tolist()
        ldg_assignment = ldg_partition(g, 4, seed=3)
        assert edge_cut(g, ldg_assignment) < edge_cut(g, random_assignment)


class TestExtraFormats:
    def test_metis_round_trip(self, tmp_path):
        from repro.graph.io import load_metis, save_metis

        g = power_law_cluster(40, 3, 0.4, seed=12, name="metis")
        path = tmp_path / "g.metis"
        save_metis(g, path)
        loaded = load_metis(path)
        assert loaded.num_vertices == g.num_vertices
        assert set(loaded.edges()) == set(g.edges())

    def test_metis_header_validated(self, tmp_path):
        from repro.graph.io import load_metis

        path = tmp_path / "bad.metis"
        path.write_text("3 1\n2\n1\n")  # promises 3 vertex lines, has 2
        with pytest.raises(ValueError, match="vertex lines"):
            load_metis(path)

    def test_metis_comments_skipped(self, tmp_path):
        from repro.graph.io import load_metis

        path = tmp_path / "c.metis"
        path.write_text("% comment\n2 1\n2\n1\n")
        g = load_metis(path)
        assert g.num_edges == 1

    def test_metis_out_of_range_neighbor(self, tmp_path):
        from repro.graph.io import load_metis

        path = tmp_path / "oob.metis"
        path.write_text("2 1\n5\n1\n")
        with pytest.raises(ValueError, match="out of range"):
            load_metis(path)

    def test_json_round_trip(self, tmp_path):
        from repro.graph.io import load_json_graph, save_json_graph

        g = assign_labels(power_law_cluster(30, 3, 0.4, seed=13), 4, seed=14)
        path = tmp_path / "g.json"
        save_json_graph(g, path)
        loaded = load_json_graph(path)
        assert loaded.num_vertices == g.num_vertices
        assert set(loaded.edges()) == set(g.edges())
        assert [loaded.label(v) for v in range(loaded.num_vertices)] == [
            g.label(v) for v in range(g.num_vertices)
        ]
        assert loaded.name == g.name
