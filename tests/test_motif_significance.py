"""Tests for rewiring and network-motif significance."""

from __future__ import annotations

import math

import pytest

from repro.apps.motif_significance import (
    MotifSignificance,
    motif_significance,
    significant_motifs,
)
from repro.core.atlas import TRIANGLE
from repro.core.pattern import Pattern
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph
from repro.graph.generators import erdos_renyi, power_law_cluster, rewire


class TestRewire:
    def test_degree_sequence_preserved(self):
        g = power_law_cluster(120, 4, 0.5, seed=3)
        r = rewire(g, seed=7)
        assert list(r.degrees) == list(g.degrees)
        assert r.num_edges == g.num_edges

    def test_structure_changes(self):
        g = power_law_cluster(120, 4, 0.5, seed=3)
        r = rewire(g, seed=7)
        assert set(r.edges()) != set(g.edges())

    def test_deterministic(self):
        g = power_law_cluster(80, 3, 0.4, seed=1)
        assert set(rewire(g, seed=5).edges()) == set(rewire(g, seed=5).edges())

    def test_labels_carried(self):
        g = DataGraph(4, [(0, 1), (2, 3)], labels=[1, 2, 3, 4])
        r = rewire(g, seed=1)
        assert [r.label(v) for v in range(4)] == [1, 2, 3, 4]

    def test_tiny_graph_safe(self):
        g = DataGraph(2, [(0, 1)], name="k2")
        r = rewire(g)
        assert set(r.edges()) == {(0, 1)}

    def test_no_self_loops_or_duplicates(self):
        g = power_law_cluster(60, 3, 0.5, seed=9)
        r = rewire(g, swaps=5000, seed=11)
        assert all(u != v for u, v in r.edges())
        assert len(set(r.edges())) == r.num_edges


class TestSignificance:
    @pytest.fixture(scope="class")
    def clustered(self):
        return power_law_cluster(140, 4, 0.8, seed=5, name="clustered")

    def test_triangles_significant_in_clustered_graph(self, clustered):
        """A clustered graph has far more triangles than its rewired
        null model — the canonical Milo et al. result."""
        results = motif_significance(clustered, size=3, null_samples=6, seed=1)
        by_name = {r.name: r for r in results}
        assert by_name["triangle"].z_score > 2.0
        assert by_name["triangle"].observed > by_name["triangle"].null_mean

    def test_er_graph_not_significant(self):
        """ER graphs are their own null model: |z| stays small."""
        g = erdos_renyi(150, 0.06, seed=2)
        results = motif_significance(g, size=3, null_samples=8, seed=3)
        for r in results:
            if math.isfinite(r.z_score):
                assert abs(r.z_score) < 4.0

    def test_significant_filtering(self, clustered):
        hits = significant_motifs(clustered, size=3, threshold=2.0,
                                  null_samples=6, seed=1)
        assert any(r.name == "triangle" for r in hits)

    def test_sorted_by_absolute_z(self, clustered):
        results = motif_significance(clustered, size=3, null_samples=5, seed=4)
        zs = [abs(r.z_score) for r in results if math.isfinite(r.z_score)]
        assert zs == sorted(zs, reverse=True)

    def test_needs_two_samples(self, clustered):
        with pytest.raises(ValueError):
            motif_significance(clustered, null_samples=1)

    def test_zero_std_cases(self):
        flat = MotifSignificance(
            pattern=TRIANGLE, observed=5, null_mean=5.0, null_std=0.0
        )
        assert flat.z_score == 0.0
        spike = MotifSignificance(
            pattern=TRIANGLE, observed=9, null_mean=5.0, null_std=0.0
        )
        assert math.isinf(spike.z_score)

    def test_morph_and_baseline_agree(self):
        g = power_law_cluster(90, 3, 0.6, seed=8)
        a = motif_significance(g, size=3, null_samples=4, morph=True, seed=2)
        b = motif_significance(g, size=3, null_samples=4, morph=False, seed=2)
        assert [(r.name, r.observed, r.null_mean) for r in a] == [
            (r.name, r.observed, r.null_mean) for r in b
        ]
