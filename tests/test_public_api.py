"""Contract tests for the ``repro`` public API surface.

Pins three things the facade redesign promised: ``__all__`` is the
importable truth (every name exists, is documented, and nothing public
is missing), ``repro.run`` round-trips every engine with results
identical to a hand-built session, and the deprecated calling
conventions keep working — warning exactly once.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import _compat
from repro.core.atlas import TRIANGLE, motif_patterns
from repro.engines.peregrine.engine import PeregrineEngine
from repro.morph.session import MorphingSession, compare_baseline_and_morphed


class TestAllList:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name!r}"

    def test_all_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_every_public_symbol_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, (dict, list, tuple, str, int, float, frozenset)):
                continue  # data constants carry their docs in the module
            if not (getattr(obj, "__doc__", None) or "").strip():
                undocumented.append(name)
        assert not undocumented, f"public symbols lack docstrings: {undocumented}"

    def test_no_unexported_public_callables(self):
        """Anything defined under ``repro`` top-level must be in __all__."""
        public = {
            name
            for name, obj in vars(repro).items()
            if not name.startswith("_")
            and callable(obj)
            and getattr(obj, "__module__", "").startswith("repro")
        }
        missing = public - set(repro.__all__)
        assert not missing, f"public callables missing from __all__: {missing}"


class TestRunFacade:
    @pytest.mark.parametrize("engine_name", sorted(repro.ENGINES))
    def test_round_trips_every_engine(self, small_graph, engine_name):
        patterns = list(motif_patterns(3))
        by_name = repro.run(small_graph, patterns, engine_name)
        by_hand = MorphingSession(repro.ENGINES[engine_name]()).run(
            small_graph, patterns
        )
        assert by_name.results == by_hand.results

    def test_single_pattern_convenience(self, small_graph):
        result = repro.run(small_graph, TRIANGLE)
        assert list(result.results) == [TRIANGLE]

    def test_morph_false_matches_baseline_session(self, small_graph):
        patterns = list(motif_patterns(3))
        facade = repro.run(small_graph, patterns, morph=False)
        session = MorphingSession(PeregrineEngine(), enabled=False).run(
            small_graph, patterns
        )
        assert facade.results == session.results
        assert not facade.morphing_enabled

    def test_engine_instance_and_class_accepted(self, small_graph):
        engine = PeregrineEngine()
        assert repro.resolve_engine(engine) is engine
        assert isinstance(repro.resolve_engine(PeregrineEngine), PeregrineEngine)
        assert isinstance(repro.resolve_engine("PEREGRINE"), PeregrineEngine)

    def test_unknown_engine_rejected(self, small_graph):
        with pytest.raises(ValueError, match="unknown engine"):
            repro.run(small_graph, [TRIANGLE], engine="nonesuch")
        with pytest.raises(TypeError):
            repro.resolve_engine(42)

    def test_trace_kwarg_writes_jsonl(self, small_graph, tmp_path):
        path = tmp_path / "run.jsonl"
        result = repro.run(small_graph, list(motif_patterns(3)), trace=path)
        assert result.trace is not None
        loaded = repro.load_trace(path)
        assert [s.name for s in loaded.spans] == [
            s.name for s in result.trace.spans
        ]

    def test_trace_tracer_instance(self, small_graph):
        tracer = repro.Tracer()
        result = repro.run(small_graph, [TRIANGLE], trace=tracer)
        assert result.trace is not None
        assert result.trace.spans == tracer.spans

    def test_config_is_keyword_only(self, small_graph):
        with pytest.raises(TypeError):
            repro.run(small_graph, [TRIANGLE], "peregrine", None, True)


class TestDeprecationShims:
    @pytest.fixture(autouse=True)
    def fresh_warning_registry(self):
        _compat._reset()
        yield
        _compat._reset()

    def test_positional_session_config_warns_exactly_once(self, small_graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = MorphingSession(PeregrineEngine(), None, False)
            second = MorphingSession(PeregrineEngine(), None, True)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "keyword arguments" in str(deprecations[0].message)
        # The shim remaps, so behavior matches the keyword spelling.
        assert first.enabled is False and second.enabled is True
        assert first.run(small_graph, [TRIANGLE]).results == MorphingSession(
            PeregrineEngine(), enabled=False
        ).run(small_graph, [TRIANGLE]).results

    def test_positional_compare_aggregation_warns_exactly_once(self, small_graph):
        from repro.core.aggregation import CountAggregation

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            compare_baseline_and_morphed(
                PeregrineEngine, small_graph, [TRIANGLE], CountAggregation()
            )
            compare_baseline_and_morphed(
                PeregrineEngine, small_graph, [TRIANGLE], CountAggregation()
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_keyword_calls_do_not_warn(self, small_graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            MorphingSession(PeregrineEngine(), enabled=False)
            compare_baseline_and_morphed(PeregrineEngine, small_graph, [TRIANGLE])
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_too_many_positionals_rejected(self):
        with pytest.raises(TypeError, match="positional"):
            MorphingSession(
                PeregrineEngine(), None, True, 0.6, None, 1, None, "extra"
            )
