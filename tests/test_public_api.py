"""Contract tests for the ``repro`` public API surface.

Pins four things the facade redesign promised: ``__all__`` is the
importable truth (every name exists, is documented, and nothing public
is missing), ``repro.run`` round-trips every engine with results
identical to a hand-built session, the typed :class:`repro.RunOptions`
is validated on every construction path and JSON round-trips exactly,
and the deprecated calling conventions keep working — warning exactly
once per shimmed keyword and byte-identical to the typed form.
"""

from __future__ import annotations

import json
import warnings

import pytest

import repro
from repro import _compat
from repro.core.atlas import TRIANGLE, motif_patterns
from repro.engines.peregrine.engine import PeregrineEngine
from repro.morph.session import MorphingSession, compare_baseline_and_morphed
from repro.serve.protocol import encode_value


class TestAllList:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name!r}"

    def test_all_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_every_public_symbol_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, (dict, list, tuple, str, int, float, frozenset)):
                continue  # data constants carry their docs in the module
            if not (getattr(obj, "__doc__", None) or "").strip():
                undocumented.append(name)
        assert not undocumented, f"public symbols lack docstrings: {undocumented}"

    def test_no_unexported_public_callables(self):
        """Anything defined under ``repro`` top-level must be in __all__."""
        public = {
            name
            for name, obj in vars(repro).items()
            if not name.startswith("_")
            and callable(obj)
            and getattr(obj, "__module__", "").startswith("repro")
        }
        missing = public - set(repro.__all__)
        assert not missing, f"public callables missing from __all__: {missing}"


class TestRunFacade:
    @pytest.mark.parametrize("engine_name", sorted(repro.ENGINES))
    def test_round_trips_every_engine(self, small_graph, engine_name):
        patterns = list(motif_patterns(3))
        by_name = repro.run(small_graph, patterns, engine_name)
        by_hand = MorphingSession(repro.ENGINES[engine_name]()).run(
            small_graph, patterns
        )
        assert by_name.results == by_hand.results

    def test_single_pattern_convenience(self, small_graph):
        result = repro.run(small_graph, TRIANGLE)
        assert list(result.results) == [TRIANGLE]

    def test_morph_false_matches_baseline_session(self, small_graph):
        patterns = list(motif_patterns(3))
        facade = repro.run(small_graph, patterns, morph=False)
        session = MorphingSession(PeregrineEngine(), enabled=False).run(
            small_graph, patterns
        )
        assert facade.results == session.results
        assert not facade.morphing_enabled

    def test_engine_instance_and_class_accepted(self, small_graph):
        engine = PeregrineEngine()
        assert repro.resolve_engine(engine) is engine
        assert isinstance(repro.resolve_engine(PeregrineEngine), PeregrineEngine)
        assert isinstance(repro.resolve_engine("PEREGRINE"), PeregrineEngine)

    def test_unknown_engine_rejected(self, small_graph):
        with pytest.raises(ValueError, match="unknown engine"):
            repro.run(small_graph, [TRIANGLE], engine="nonesuch")
        with pytest.raises(TypeError):
            repro.resolve_engine(42)

    def test_trace_kwarg_writes_jsonl(self, small_graph, tmp_path):
        path = tmp_path / "run.jsonl"
        result = repro.run(small_graph, list(motif_patterns(3)), trace=path)
        assert result.trace is not None
        loaded = repro.load_trace(path)
        assert [s.name for s in loaded.spans] == [
            s.name for s in result.trace.spans
        ]

    def test_trace_tracer_instance(self, small_graph):
        tracer = repro.Tracer()
        result = repro.run(small_graph, [TRIANGLE], trace=tracer)
        assert result.trace is not None
        assert result.trace.spans == tracer.spans

    def test_config_is_keyword_only(self, small_graph):
        with pytest.raises(TypeError):
            repro.run(small_graph, [TRIANGLE], "peregrine", None, True)


class TestDeprecationShims:
    @pytest.fixture(autouse=True)
    def fresh_warning_registry(self):
        _compat._reset()
        yield
        _compat._reset()

    def test_positional_session_config_warns_exactly_once(self, small_graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = MorphingSession(PeregrineEngine(), None, False)
            second = MorphingSession(PeregrineEngine(), None, True)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "keyword arguments" in str(deprecations[0].message)
        # The shim remaps, so behavior matches the keyword spelling.
        assert first.enabled is False and second.enabled is True
        assert first.run(small_graph, [TRIANGLE]).results == MorphingSession(
            PeregrineEngine(), enabled=False
        ).run(small_graph, [TRIANGLE]).results

    def test_positional_compare_aggregation_warns_exactly_once(self, small_graph):
        from repro.core.aggregation import CountAggregation

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            compare_baseline_and_morphed(
                PeregrineEngine, small_graph, [TRIANGLE], CountAggregation()
            )
            compare_baseline_and_morphed(
                PeregrineEngine, small_graph, [TRIANGLE], CountAggregation()
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_keyword_calls_do_not_warn(self, small_graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            MorphingSession(PeregrineEngine(), enabled=False)
            compare_baseline_and_morphed(PeregrineEngine, small_graph, [TRIANGLE])
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_too_many_positionals_rejected(self):
        with pytest.raises(TypeError, match="positional"):
            MorphingSession(
                PeregrineEngine(), None, True, 0.6, None, 1, None, "extra"
            )


class TestRunOptions:
    def test_defaults_round_trip(self):
        opts = repro.RunOptions()
        assert repro.RunOptions.from_dict(opts.to_dict()) == opts

    def test_wire_round_trip_through_json(self):
        opts = repro.RunOptions(
            engine="autozero",
            aggregation="mni",
            morph=False,
            strategy="direct",
            workers=3,
            margin=1.5,
            batch_roots=64,
            deadline_seconds=10.0,
            checkpoint="ckpt.jsonl",
            retry=2,
            trace="out.jsonl",
            progress=True,
        )
        wire = json.loads(json.dumps(opts.to_dict()))
        rebuilt = repro.RunOptions.from_dict(wire)
        # retry=2 serializes as the int shorthand; everything else exact.
        assert rebuilt.replace(retry=opts.retry) == opts

    def test_retry_policy_round_trips(self):
        policy = repro.RetryPolicy(max_retries=5, backoff_seconds=0.1, seed=7)
        opts = repro.RunOptions(retry=policy)
        rebuilt = repro.RunOptions.from_dict(
            json.loads(json.dumps(opts.to_dict()))
        )
        assert rebuilt.retry == policy

    def test_sparse_request_body_uses_defaults(self):
        opts = repro.RunOptions.from_dict({"workers": 4})
        assert opts.workers == 4
        assert opts.engine == "peregrine"
        assert opts.morph is True

    @pytest.mark.parametrize(
        "bad",
        [
            {"strategy": "greedy"},
            {"workers": 0},
            {"workers": "two"},
            {"margin": 0},
            {"margin": -1.0},
            {"batch_roots": 0},
            {"deadline_seconds": 0},
            {"aggregation": "median"},
            {"engine": ""},
            {"retry": "forever"},
        ],
    )
    def test_validation_rejects_bad_values(self, bad):
        with pytest.raises((TypeError, ValueError)):
            repro.RunOptions(**bad)

    def test_validation_messages_preserved(self):
        with pytest.raises(ValueError, match="unknown strategy 'greedy'"):
            repro.RunOptions(strategy="greedy")
        with pytest.raises(ValueError, match="batch_roots must be >= 1"):
            repro.RunOptions(batch_roots=0)

    def test_replace_revalidates(self):
        opts = repro.RunOptions()
        assert opts.replace(workers=8).workers == 8
        with pytest.raises(ValueError):
            opts.replace(strategy="greedy")
        # frozen: the original is untouched by replace
        assert opts.workers == 1

    def test_local_only_objects_refuse_the_wire(self):
        cases = {
            "trace": repro.Tracer(),
            "cache": repro.MeasurementCache(),
            "plan_cache": repro.PlanCache(),
            "faults": repro.FaultPlan([]),
        }
        for field, live in cases.items():
            with pytest.raises(ValueError, match=field):
                repro.RunOptions(**{field: live}).to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="wokers"):
            repro.RunOptions.from_dict({"wokers": 4})

    def test_aggregation_instance_serializes_as_name(self):
        opts = repro.RunOptions(aggregation=repro.MNIAggregation())
        assert opts.to_dict()["aggregation"] == "mni"

    def test_session_consumes_options_directly(self, small_graph):
        opts = repro.RunOptions(aggregation="count", morph=False, margin=0.9)
        session = MorphingSession(PeregrineEngine(), options=opts)
        assert session.options is opts
        assert session.enabled is False
        assert session.margin == 0.9

    def test_session_rejects_options_plus_keywords(self):
        with pytest.raises(TypeError, match="not both"):
            MorphingSession(
                PeregrineEngine(), options=repro.RunOptions(), workers=2
            )


#: The four aggregation wire names crossed with every engine below.
_AGGREGATIONS = ("count", "mni", "matches", "exists")


class TestRunOptionsShims:
    @pytest.fixture(autouse=True)
    def fresh_warning_registry(self):
        _compat._reset()
        yield
        _compat._reset()

    def test_each_legacy_kwarg_warns_exactly_once(self, small_graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.run(small_graph, [TRIANGLE], workers=1, margin=0.7)
            repro.run(small_graph, [TRIANGLE], workers=1, margin=0.7)
        deprecations = [
            str(w.message)
            for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2
        assert sum("workers" in m for m in deprecations) == 1
        assert sum("margin" in m for m in deprecations) == 1
        assert all("RunOptions" in m for m in deprecations)

    def test_options_spelling_does_not_warn(self, small_graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.run(
                small_graph, [TRIANGLE], options=repro.RunOptions(workers=1)
            )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_unknown_kwarg_raises(self, small_graph):
        with pytest.raises(TypeError, match="wokers"):
            repro.run(small_graph, [TRIANGLE], wokers=4)

    def test_legacy_kwargs_layer_onto_options(self, small_graph):
        """A legacy kwarg overrides the same field of a given options."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = repro.run(
                small_graph,
                [TRIANGLE],
                options=repro.RunOptions(morph=False),
                aggregation="exists",
            )
        assert result.results[TRIANGLE] is True
        assert not result.morphing_enabled

    @pytest.mark.parametrize("aggregation", _AGGREGATIONS)
    @pytest.mark.parametrize("engine_name", sorted(repro.ENGINES))
    def test_legacy_matrix_byte_identical_to_options(
        self, small_graph, engine_name, aggregation
    ):
        patterns = list(motif_patterns(3))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = repro.run(
                small_graph, patterns, engine_name, aggregation=aggregation
            )
        typed = repro.run(
            small_graph,
            patterns,
            engine_name,
            options=repro.RunOptions(aggregation=aggregation),
        )
        assert legacy.results == typed.results
        # Byte-identical on the wire encoding (deterministic element order).
        legacy_wire = json.dumps(
            {str(i): encode_value(v) for i, v in enumerate(legacy.results.values())}
        )
        typed_wire = json.dumps(
            {str(i): encode_value(v) for i, v in enumerate(typed.results.values())}
        )
        assert legacy_wire == typed_wire
