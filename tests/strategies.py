"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from itertools import combinations

from hypothesis import strategies as st

from repro.core.pattern import Pattern
from repro.graph.datagraph import DataGraph


@st.composite
def patterns(
    draw,
    min_n: int = 2,
    max_n: int = 5,
    connected: bool = False,
    labeled: bool = False,
    max_labels: int = 3,
):
    """Random patterns: a subset of edges plus a subset of the rest as
    anti-edges; optionally restricted to connected regular-edge graphs."""
    n = draw(st.integers(min_n, max_n))
    pairs = list(combinations(range(n), 2))
    edge_mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    edges = [e for e, keep in zip(pairs, edge_mask) if keep]
    if connected:
        # Add a random spanning path to force connectivity.
        order = draw(st.permutations(list(range(n))))
        edges.extend((order[i], order[i + 1]) for i in range(n - 1))
    edge_set = {tuple(sorted(e)) for e in edges}
    rest = [e for e in pairs if e not in edge_set]
    anti_mask = draw(st.lists(st.booleans(), min_size=len(rest), max_size=len(rest)))
    anti = [e for e, keep in zip(rest, anti_mask) if keep]
    labels = None
    if labeled:
        labels = draw(
            st.lists(st.integers(0, max_labels - 1), min_size=n, max_size=n)
        )
    return Pattern(n, edge_set, anti, labels=labels)


@st.composite
def connected_skeletons(draw, min_n: int = 2, max_n: int = 5, labeled: bool = False):
    """Connected, edge-induced patterns (morphing query material)."""
    p = draw(patterns(min_n=min_n, max_n=max_n, connected=True, labeled=labeled))
    return p.edge_induced()


def permutations_of(n: int):
    return st.permutations(list(range(n)))


def shard_counts(max_shards: int = 8):
    """Shard counts for the parallel execution layer (1 = unsharded)."""
    return st.integers(1, max_shards)


@st.composite
def data_graphs(draw, min_n: int = 4, max_n: int = 14, labeled: bool = False):
    """Small random data graphs sized for the brute-force oracle."""
    n = draw(st.integers(min_n, max_n))
    pairs = list(combinations(range(n), 2))
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    edges = [e for e, keep in zip(pairs, mask) if keep]
    labels = None
    if labeled:
        labels = draw(st.lists(st.integers(0, 2), min_size=n, max_size=n))
    return DataGraph(n, edges, labels=labels, name="hypo")
