"""Tests for AutoMine-style plan compilation (codegen)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import atlas
from repro.core.pattern import Pattern
from repro.engines.autozero.codegen import compile_plan, compiled_source, run_compiled
from repro.engines.base import EngineStats, run_plan
from repro.engines.plan import ExplorationPlan

from .oracle import brute_force_count
from .strategies import connected_skeletons, data_graphs


class TestCompiledSource:
    def test_source_is_valid_python(self):
        for p in atlas.motif_patterns(4):
            source = compiled_source(ExplorationPlan.build(p))
            compile(source, "<test>", "exec")  # must not raise

    def test_source_unrolls_levels(self):
        source = compiled_source(ExplorationPlan.build(atlas.FOUR_CLIQUE))
        assert "for v0 in" in source
        assert "for v2 in" in source
        assert "count += len(cand3)" in source  # counting fast path

    def test_anti_edges_become_differences(self):
        source = compiled_source(
            ExplorationPlan.build(atlas.FOUR_CYCLE.vertex_induced())
        )
        assert "difference(" in source

    def test_labels_inlined(self):
        p = Pattern.path(3, labels=[2, 5, 2])
        source = compiled_source(ExplorationPlan.build(p))
        # Matching starts at the path's center (label 5); the endpoints'
        # label-2 filters are inlined as literal comparisons.
        assert "graph.vertices_by_label.get(5" in source
        assert "== 2" in source


class TestCompiledKernelCorrectness:
    @pytest.mark.parametrize("pattern", list(atlas.motif_patterns(4)))
    def test_matches_interpreter_motifs(self, pattern, small_graph):
        plan = ExplorationPlan.build(pattern)
        interp_stats, comp_stats = EngineStats(), EngineStats()
        interpreted = run_plan(small_graph, plan, interp_stats)
        compiled = run_compiled(small_graph, plan, comp_stats)
        assert compiled == interpreted == brute_force_count(small_graph, pattern)
        # Identical set-operation accounting, not just identical counts.
        assert comp_stats.setops.intersections == interp_stats.setops.intersections
        assert comp_stats.setops.differences == interp_stats.setops.differences

    @given(data_graphs(min_n=6, max_n=12), connected_skeletons(max_n=4))
    @settings(max_examples=25, deadline=None)
    def test_matches_interpreter_random(self, graph, skel):
        for pattern in (skel, skel.vertex_induced()):
            plan = ExplorationPlan.build(pattern)
            assert run_compiled(graph, plan, EngineStats()) == run_plan(
                graph, plan, EngineStats()
            )

    def test_callback_mode(self, small_graph):
        plan = ExplorationPlan.build(atlas.TAILED_TRIANGLE)
        interpreted, compiled = [], []
        run_plan(small_graph, plan, EngineStats(), interpreted.append)
        run_compiled(small_graph, plan, EngineStats(), compiled.append)
        assert sorted(interpreted) == sorted(compiled)

    def test_labeled_pattern(self, small_labeled_graph):
        p = Pattern(3, [(0, 1), (1, 2)], labels=[0, 1, 0])
        plan = ExplorationPlan.build(p)
        assert run_compiled(
            small_labeled_graph, plan, EngineStats()
        ) == brute_force_count(small_labeled_graph, p)

    def test_single_vertex_plan(self, small_labeled_graph):
        p = Pattern(1, [], labels=[0])
        plan = ExplorationPlan.build(p)
        expected = len(small_labeled_graph.vertices_by_label[0])
        assert run_compiled(small_labeled_graph, plan, EngineStats()) == expected

    def test_early_termination(self, small_graph):
        from repro.engines.base import StopExploration

        plan = ExplorationPlan.build(atlas.TRIANGLE)
        seen = []

        def stop_after_one(match):
            seen.append(match)
            raise StopExploration()

        run_compiled(small_graph, plan, EngineStats(), stop_after_one)
        assert len(seen) == 1


class TestKernelCache:
    def test_same_shape_shares_kernel(self):
        a = compile_plan(ExplorationPlan.build(atlas.FOUR_CYCLE))
        b = compile_plan(ExplorationPlan.build(atlas.FOUR_CYCLE))
        assert a is b

    def test_different_shapes_differ(self):
        a = compile_plan(ExplorationPlan.build(atlas.FOUR_CYCLE))
        b = compile_plan(ExplorationPlan.build(atlas.FOUR_CLIQUE))
        assert a is not b

    def test_variant_changes_kernel(self):
        a = compile_plan(ExplorationPlan.build(atlas.FOUR_CYCLE))
        b = compile_plan(
            ExplorationPlan.build(atlas.FOUR_CYCLE.vertex_induced())
        )
        assert a is not b


class TestAutoZeroUsesCompiledKernels:
    def test_engine_count_correct(self, small_graph):
        from repro.engines.autozero.engine import AutoZeroEngine

        engine = AutoZeroEngine()
        for p in atlas.motif_patterns(4):
            assert engine.count(small_graph, p) == brute_force_count(small_graph, p)
