"""Degradation paths of the process-pool transport, and the shared-memory
leak probe.

``ProcessShardExecutor`` promises to *degrade, never die*: a pool that
cannot be built (restricted sandboxes), a warm-up that fails, or a
``BrokenProcessPool`` mid-``map_shards`` all fall back to in-process
sharded execution with a ``RuntimeWarning`` — identical results, no
processes. Separately, every shared-memory segment the transport exports
must be disposed on every exit path; ``assert_no_leaked_segments`` is the
probe (wired into an autouse fixture in ``conftest.py``) that fails any
test leaving a segment behind.
"""

from __future__ import annotations

import pickle
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.aggregation import CountAggregation
from repro.core.atlas import TRIANGLE
from repro.engines.execution import (
    ProcessShardExecutor,
    SerialShardExecutor,
    SharedGraphPayload,
    assert_no_leaked_segments,
    live_shared_segments,
    run_sharded,
    shard_by_degree_prefix,
)
from repro.engines.peregrine.engine import PeregrineEngine
from repro.errors import SharedMemoryLeakError


def _count(engine, graph, executor):
    return run_sharded(engine, graph, TRIANGLE, CountAggregation(), executor)


class TestPoolDegradation:
    def test_broken_pool_falls_back_to_serial(self, small_graph):
        """A BrokenProcessPool during map_shards degrades to in-process
        sharding — same results, and the fallback sticks for later calls."""
        engine = PeregrineEngine()
        oracle = _count(PeregrineEngine(), small_graph, SerialShardExecutor(2))
        executor = ProcessShardExecutor(workers=2)
        executor._ensure_pool = _raise_broken  # pool collapses on contact
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                value = _count(engine, small_graph, executor)
            assert value == oracle
            assert isinstance(executor._fallback, SerialShardExecutor)
            # Subsequent calls go straight to the fallback, no new warning.
            assert _count(engine, small_graph, executor) == oracle
        finally:
            executor.close()

    def test_prepare_failure_warns_and_degrades(self, small_graph):
        engine = PeregrineEngine()
        executor = ProcessShardExecutor(workers=2)
        executor._ensure_pool = _raise_os_error
        try:
            with pytest.warns(RuntimeWarning, match="warm-up failed"):
                executor.prepare(engine, small_graph)
            # prepare() degrades instead of raising; map_shards then owns
            # the fallback and execution still completes in-process.
            with pytest.warns(RuntimeWarning, match="falling back"):
                value = _count(engine, small_graph, executor)
            assert value == _count(
                PeregrineEngine(), small_graph, SerialShardExecutor(2)
            )
        finally:
            executor.close()

    def test_recovering_path_survives_unbuildable_pool(self, small_graph):
        """The fault-tolerant mapper hits the same degradation: a pool that
        cannot be rebuilt demotes the whole run to in-process sharding."""
        from repro.engines.recovery import RunControl, map_shards_recovering

        engine = PeregrineEngine()
        shards = shard_by_degree_prefix(small_graph, 4)
        serial = SerialShardExecutor(2)
        expected = [
            r[0]
            for r in serial.map_shards(
                engine, small_graph, TRIANGLE, CountAggregation(), shards
            )
        ]
        executor = ProcessShardExecutor(workers=2)
        executor._ensure_pool = _raise_broken
        try:
            with pytest.warns(RuntimeWarning, match="recovering in-process"):
                results, report = map_shards_recovering(
                    executor,
                    engine,
                    small_graph,
                    TRIANGLE,
                    CountAggregation(),
                    shards,
                    control=RunControl(),
                )
            assert report.complete
            values = [results[i][0] for i in sorted(results)]
            assert pickle.dumps(values) == pickle.dumps(expected)
        finally:
            executor.close()


def _raise_broken(*_a, **_k):
    raise BrokenProcessPool("injected: pool cannot start")


def _raise_os_error(*_a, **_k):
    raise OSError("injected: fork refused")


class TestLeakProbe:
    def test_payload_context_manager_disposes(self, small_graph):
        with SharedGraphPayload.export(small_graph) as payload:
            assert payload._shm.name in live_shared_segments()
        assert not live_shared_segments()

    def test_dispose_idempotent_and_unregisters(self, small_graph):
        payload = SharedGraphPayload.export(small_graph)
        assert live_shared_segments()
        payload.dispose()
        payload.dispose()
        assert not live_shared_segments()
        assert_no_leaked_segments()  # clean: no raise

    def test_leak_is_detected_then_reclaimed(self, small_graph):
        payload = SharedGraphPayload.export(small_graph)
        name = payload._shm.name
        with pytest.raises(SharedMemoryLeakError) as info:
            assert_no_leaked_segments()
        assert name in info.value.segments
        # The probe reclaims what it reports, so one leak cannot cascade
        # into every later test failing.
        assert not live_shared_segments()
        assert_no_leaked_segments()
        payload.dispose()  # safe after reclaim

    def test_executor_close_leaves_no_segments(self, small_graph):
        engine = PeregrineEngine()
        executor = ProcessShardExecutor(workers=2)
        try:
            executor._ensure_pool(engine, small_graph)
        finally:
            executor.close()
        assert not live_shared_segments()

    def test_finalizer_reclaims_dropped_payload(self, small_graph):
        import gc

        payload = SharedGraphPayload.export(small_graph)
        name = payload._shm.name
        del payload
        gc.collect()
        assert name not in live_shared_segments()
