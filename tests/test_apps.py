"""Tests for the application layer: MC, SC, SE."""

from __future__ import annotations

import pytest

from repro.apps.enumeration import (
    collect_matches,
    enumerate_matches,
    weight_window_filter,
)
from repro.apps.motif_counting import count_motifs, motif_census, total_motifs
from repro.apps.subgraph_counting import count_one, count_subgraphs
from repro.core import atlas
from repro.engines.peregrine.engine import PeregrineEngine

from .oracle import brute_force_count


class TestMotifCounting:
    def test_census_matches_oracle(self, small_graph):
        result = count_motifs(small_graph, 4, morph=False)
        for p, c in result.results.items():
            assert c == brute_force_count(small_graph, p)

    def test_morph_equals_baseline(self, small_graph):
        morphed = count_motifs(small_graph, 4, morph=True)
        baseline = count_motifs(small_graph, 4, morph=False)
        assert morphed.results == baseline.results

    def test_census_names(self, small_graph):
        census = motif_census(small_graph, 3)
        assert set(census) == {"triangle", "3P-V"}

    def test_total(self, small_graph):
        result = count_motifs(small_graph, 3)
        assert total_motifs(result.results) == sum(result.results.values())

    def test_triangle_count_identity(self, small_graph):
        """#triangles + #induced paths = #connected 3-subgraphs."""
        census = motif_census(small_graph, 3)
        assert census["triangle"] == brute_force_count(small_graph, atlas.TRIANGLE)


class TestSubgraphCounting:
    def test_count_one(self, small_graph):
        c = count_one(small_graph, atlas.FOUR_CYCLE.vertex_induced())
        assert c == brute_force_count(small_graph, atlas.FOUR_CYCLE.vertex_induced())

    def test_multi_pattern(self, small_graph):
        patterns = [atlas.P1.vertex_induced(), atlas.FOUR_CLIQUE]
        result = count_subgraphs(small_graph, patterns, morph=True)
        for p in patterns:
            assert result.results[p] == brute_force_count(small_graph, p)

    def test_engine_override(self, small_graph):
        from repro.engines.bigjoin.engine import BigJoinEngine

        c = count_one(small_graph, atlas.TRIANGLE, engine=BigJoinEngine())
        assert c == brute_force_count(small_graph, atlas.TRIANGLE)


class TestEnumeration:
    def test_collect_matches(self, tiny_graph):
        found = collect_matches(tiny_graph, atlas.TRIANGLE)
        assert frozenset({0, 1, 2}) in found
        assert len(found) == brute_force_count(tiny_graph, atlas.TRIANGLE)

    def test_morphed_enumeration_equal(self, small_graph):
        assert collect_matches(small_graph, atlas.FOUR_CYCLE, morph=True) == (
            collect_matches(small_graph, atlas.FOUR_CYCLE, morph=False)
        )

    def test_filtered_enumeration(self, small_graph, vertex_weights):
        accept = weight_window_filter(vertex_weights, num_std=1.0)
        kept: list = []
        result = enumerate_matches(
            small_graph,
            [atlas.FOUR_CYCLE],
            lambda p, m: kept.append(m),
            vertex_filter=accept,
            morph=False,
        )
        assert result.results[atlas.FOUR_CYCLE] == len(kept)
        assert all(accept(m) for m in kept)
        # The 1-sigma window keeps some but usually not all matches.
        total = brute_force_count(small_graph, atlas.FOUR_CYCLE)
        assert 0 < len(kept) <= total

    def test_filter_window_widens(self, small_graph, vertex_weights):
        narrow = weight_window_filter(vertex_weights, num_std=0.2)
        wide = weight_window_filter(vertex_weights, num_std=3.0)

        def run(f):
            out = []
            enumerate_matches(
                small_graph, [atlas.TRIANGLE], lambda p, m: out.append(m),
                vertex_filter=f, morph=False,
            )
            return len(out)

        assert run(narrow) <= run(wide)

    def test_stats_exposed(self, small_graph):
        engine = PeregrineEngine()
        result = enumerate_matches(
            small_graph, [atlas.TRIANGLE], lambda p, m: None, engine=engine
        )
        assert result.stats.udf_calls > 0
