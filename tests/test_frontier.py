"""Differential matrix for the vectorized batched-frontier kernels.

The contract is the strongest in the repo: for any graph, pattern,
engine, aggregation, session path and shard layout, ``batch_roots=N``
must return results *byte-identical* to the per-root DFS kernels — same
counts, same MNI tables, same match lists in the same order. The matrix
here pins that at three layers:

* kernel level — :func:`repro.engines.frontier.run_plan_batched` and the
  AutoZero :func:`~repro.engines.autozero.codegen.run_compiled_batched`
  against :func:`repro.engines.base.run_plan`, counts and ``on_match``
  streams, over hypothesis-random graphs and patterns;
* session level — every engine × aggregation × morphed/baseline ×
  batch size {1, 7, 4096} × workers {1, 4};
* composition — batching under shard retry, deadlines, checkpoints and
  progress reporting still matches the fault-free per-root oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

import repro
from repro import (
    CountAggregation,
    ExistenceAggregation,
    FaultPlan,
    FaultSpec,
    MatchListAggregation,
    MNIAggregation,
    PartialRunResult,
    RetryPolicy,
)
from repro.core.atlas import FOUR_CYCLE, TAILED_TRIANGLE, TRIANGLE
from repro.core.pattern import Pattern
from repro.engines.autozero.codegen import run_compiled_batched
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.base import EngineStats, run_plan
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.frontier import run_plan_batched
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.sumpa.engine import SumPAEngine
from repro.graph.datagraph import DataGraph
from repro.observe.progress import ProgressReporter
from repro.testing.oracle import assert_matches_oracle

from .strategies import data_graphs, patterns

ENGINES = [
    PeregrineEngine,
    AutoZeroEngine,
    GraphPiEngine,
    BigJoinEngine,
    SumPAEngine,
]

AGGREGATIONS = [
    CountAggregation,
    MNIAggregation,
    MatchListAggregation,
    ExistenceAggregation,
]

#: The ISSUE's batch-size axis: degenerate, odd, and far beyond any
#: fixture's root count (so the final chunk is always ragged).
BATCH_SIZES = (1, 7, 4096)

QUERIES = [TRIANGLE, TAILED_TRIANGLE.vertex_induced(), FOUR_CYCLE]

NOSLEEP = RetryPolicy(max_retries=3, backoff_seconds=0.0, sleep=lambda _s: None)


def batched_variants(graph, plan, *, on_match=None, root_window=None, batch=7):
    """Run both batched kernels; assert they agree; return the count."""
    interp = run_plan_batched(
        graph, plan, EngineStats(), on_match=on_match,
        root_window=root_window, batch_roots=batch,
    )
    compiled = run_compiled_batched(
        graph, plan, EngineStats(),
        root_window=root_window, batch_roots=batch,
    )
    assert compiled == interp
    return interp


# -- kernel level ------------------------------------------------------------


class TestKernelDifferential:
    @given(data_graphs(min_n=1, max_n=12), patterns(min_n=2, max_n=4))
    @settings(max_examples=20, deadline=None)
    def test_counts_and_streams_match_per_root(self, graph, pattern):
        plan = PeregrineEngine().make_plan(pattern, graph)
        expected = run_plan(graph, plan, EngineStats())
        stream: list = []
        run_plan(graph, plan, EngineStats(), on_match=stream.append)
        for batch in BATCH_SIZES:
            got_stream: list = []
            got = run_plan_batched(
                graph, plan, EngineStats(), batch_roots=batch
            )
            run_plan_batched(
                graph, plan, EngineStats(),
                on_match=got_stream.append, batch_roots=batch,
            )
            assert got == expected
            assert got_stream == stream, "match order must be preserved"
            compiled_stream: list = []
            compiled = run_compiled_batched(
                graph, plan, EngineStats(),
                on_match=compiled_stream.append, batch_roots=batch,
            )
            assert compiled == expected
            assert compiled_stream == stream

    @given(data_graphs(min_n=2, max_n=10, labeled=True),
           patterns(min_n=2, max_n=3, labeled=True))
    @settings(max_examples=15, deadline=None)
    def test_labeled_graphs_match_per_root(self, graph, pattern):
        plan = PeregrineEngine().make_plan(pattern, graph)
        expected = run_plan(graph, plan, EngineStats())
        for batch in BATCH_SIZES:
            assert batched_variants(graph, plan, batch=batch) == expected

    @given(data_graphs(min_n=4, max_n=12), patterns(min_n=2, max_n=4))
    @settings(max_examples=10, deadline=None)
    def test_root_windows_match_per_root(self, graph, pattern):
        plan = PeregrineEngine().make_plan(pattern, graph)
        n = graph.num_vertices
        for window in ((0, n), (1, max(1, n // 2)), (n, n)):
            expected = run_plan(
                graph, plan, EngineStats(), root_window=window
            )
            got = batched_variants(graph, plan, root_window=window, batch=3)
            assert got == expected

    def test_empty_frontier_edgeless_graph(self):
        graph = DataGraph(6, [], name="edgeless")
        plan = PeregrineEngine().make_plan(TRIANGLE, graph)
        assert run_plan(graph, plan, EngineStats()) == 0
        for batch in BATCH_SIZES:
            assert batched_variants(graph, plan, batch=batch) == 0

    def test_batch_larger_than_root_count(self, tiny_graph):
        plan = PeregrineEngine().make_plan(TRIANGLE, tiny_graph)
        expected = run_plan(tiny_graph, plan, EngineStats())
        assert batched_variants(tiny_graph, plan, batch=4096) == expected

    def test_all_roots_pruned_by_label(self, small_labeled_graph):
        absent = int(max(small_labeled_graph.labels)) + 1
        pattern = Pattern(2, edges=[(0, 1)], labels=[absent, absent])
        plan = PeregrineEngine().make_plan(pattern, small_labeled_graph)
        assert run_plan(small_labeled_graph, plan, EngineStats()) == 0
        for batch in BATCH_SIZES:
            assert batched_variants(small_labeled_graph, plan, batch=batch) == 0

    def test_single_vertex_pattern(self, small_graph):
        plan = PeregrineEngine().make_plan(Pattern(1, edges=[]), small_graph)
        expected = run_plan(small_graph, plan, EngineStats())
        assert expected == small_graph.num_vertices
        assert batched_variants(small_graph, plan, batch=7) == expected

    def test_batch_roots_validated(self, small_graph):
        plan = PeregrineEngine().make_plan(TRIANGLE, small_graph)
        with pytest.raises(ValueError, match="batch_roots"):
            run_plan_batched(small_graph, plan, EngineStats(), batch_roots=0)
        with pytest.raises(ValueError, match="batch_roots"):
            run_compiled_batched(
                small_graph, plan, EngineStats(), batch_roots=-1
            )

    def test_segmented_frontier_matches(self, small_graph, monkeypatch):
        """A tiny segment cap forces mid-level frontier splitting."""
        import repro.engines.frontier as frontier

        monkeypatch.setattr(frontier, "MAX_FRONTIER_ROWS", 5)
        plan = PeregrineEngine().make_plan(FOUR_CYCLE, small_graph)
        expected = run_plan(small_graph, plan, EngineStats())
        assert batched_variants(small_graph, plan, batch=4096) == expected


# -- session level: the full matrix ------------------------------------------


@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("agg_cls", AGGREGATIONS)
class TestBatchedSessionMatrix:
    def test_batched_equals_per_root_serial(
        self, engine_cls, agg_cls, small_graph
    ):
        """engines × aggregations × morphed/baseline × batch sizes."""
        for enabled in (False, True):
            for batch in BATCH_SIZES:
                assert_matches_oracle(
                    small_graph,
                    QUERIES,
                    engine_cls,
                    agg_cls,
                    oracle_kwargs={"enabled": enabled},
                    enabled=enabled,
                    batch_roots=batch,
                )

    def test_batched_equals_per_root_sharded(
        self, engine_cls, agg_cls, small_graph
    ):
        """The workers=4 axis: shards feed root batches independently."""
        assert_matches_oracle(
            small_graph,
            QUERIES,
            engine_cls,
            agg_cls,
            workers=4,
            executor="serial",
            batch_roots=7,
        )


@pytest.mark.parametrize("engine_cls", [PeregrineEngine, AutoZeroEngine])
def test_labeled_session_batched(engine_cls, small_labeled_graph):
    labeled = Pattern(3, edges=[(0, 1), (1, 2)], labels=[0, 1, 0])
    for batch in BATCH_SIZES:
        assert_matches_oracle(
            small_labeled_graph, [labeled], engine_cls, batch_roots=batch
        )


def test_process_pool_batched(small_graph):
    """batch_roots must survive pickling into real pool workers."""
    assert_matches_oracle(small_graph, TRIANGLE, workers=2, batch_roots=7)


def test_run_facade_batch_roots_validated(small_graph):
    with pytest.raises(ValueError, match="batch_roots"):
        repro.run(small_graph, [TRIANGLE], batch_roots=0)


def test_batched_runs_record_batched_setops(small_graph):
    engine = PeregrineEngine()
    engine.batch_roots = 64
    engine.count(small_graph, TRIANGLE)
    assert engine.stats.setops.batched > 0

    per_root = PeregrineEngine()
    per_root.count(small_graph, TRIANGLE)
    assert per_root.stats.setops.batched == 0


def test_autozero_count_set_batched_matches(small_graph):
    from repro.core.atlas import motif_patterns

    motifs = list(motif_patterns(4))
    plain = AutoZeroEngine().count_set(small_graph, motifs)
    batched_engine = AutoZeroEngine()
    batched_engine.batch_roots = 16
    batched = batched_engine.count_set(small_graph, motifs)
    assert batched == plain
    assert batched_engine.last_sharing_ratio == 1.0


# -- composition with fault tolerance and progress ----------------------------


class TestBatchedComposition:
    def test_crash_retry_matches_oracle(self, small_graph):
        for batch in BATCH_SIZES:
            assert_matches_oracle(
                small_graph,
                [TRIANGLE, FOUR_CYCLE],
                batch_roots=batch,
                faults=FaultPlan.crashes([0, 2]),
                retry=NOSLEEP,
            )

    def test_generous_deadline_matches_oracle(self, small_graph):
        assert_matches_oracle(
            small_graph, [TRIANGLE], batch_roots=7, deadline_seconds=600.0
        )

    def test_deadline_hang_still_degrades_to_partial(self, tiny_graph):
        result = repro.run(
            tiny_graph,
            [TRIANGLE],
            batch_roots=7,
            deadline_seconds=0.25,
            faults=FaultPlan({2: FaultSpec("hang", times=None)}),
            retry=NOSLEEP,
        )
        assert isinstance(result, PartialRunResult)
        assert TRIANGLE in result.unresolved

    def test_checkpoint_resume_matches_oracle(self, small_graph, tmp_path):
        assert_matches_oracle(
            small_graph,
            [TRIANGLE],
            batch_roots=7,
            checkpoint=tmp_path / "batched.ckpt.jsonl",
        )

    def test_progress_completes_with_batches(self, small_graph):
        reporter = ProgressReporter(stream=None)
        assert_matches_oracle(
            small_graph, QUERIES, batch_roots=4, progress=reporter
        )
        snap = reporter.snapshot()
        assert snap.done_items == snap.total_items > 0
        assert snap.fraction_done == 1.0

    def test_tracer_records_batched_kernels(self, small_graph):
        from repro.observe.tracer import Tracer

        variant, _oracle = assert_matches_oracle(
            small_graph, [TRIANGLE], batch_roots=7, tracer=Tracer()
        )
        kernels = [
            s for s in variant.trace.spans if s.name.startswith("kernel.")
        ]
        assert kernels
        assert all("batched" in s.name for s in kernels)
        assert all(s.attributes["batch_roots"] == 7 for s in kernels)
        assert variant.trace.metrics["engine.setops.batched"] > 0
