"""Tests for exploration plans (matching orders, symmetry conditions)."""

from __future__ import annotations

import pytest

from repro.core import atlas
from repro.core.isomorphism import automorphisms
from repro.core.pattern import Pattern
from repro.engines.base import EngineStats, run_plan
from repro.engines.plan import ExplorationPlan

from .oracle import brute_force_count


class TestPlanConstruction:
    def test_levels_cover_all_vertices(self):
        plan = ExplorationPlan.build(atlas.CHORDAL_FOUR_CYCLE)
        assert sorted(lv.pattern_vertex for lv in plan.levels) == [0, 1, 2, 3]

    def test_backward_references_are_earlier(self):
        for p in atlas.motif_patterns(4):
            plan = ExplorationPlan.build(p)
            for i, lv in enumerate(plan.levels):
                assert all(j < i for j in lv.backward_neighbors)
                assert all(j < i for j in lv.backward_anti)
                assert all(j < i for j in lv.upper_bounds + lv.lower_bounds)

    def test_anti_positions_need_injectivity_check(self):
        plan = ExplorationPlan.build(atlas.FOUR_CYCLE.vertex_induced())
        for i, lv in enumerate(plan.levels):
            assert set(lv.non_adjacent) == set(range(i)) - set(lv.backward_neighbors)

    def test_custom_order(self):
        order = [3, 2, 1, 0]
        plan = ExplorationPlan.build(atlas.FOUR_PATH, order=order)
        assert [lv.pattern_vertex for lv in plan.levels] == order

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            ExplorationPlan.build(atlas.FOUR_PATH, order=[0, 0, 1, 2])

    def test_labels_carried(self):
        p = Pattern.path(3, labels=[5, 6, 7])
        plan = ExplorationPlan.build(p)
        labels = {lv.pattern_vertex: lv.label for lv in plan.levels}
        assert labels == {0: 5, 1: 6, 2: 7}

    def test_match_to_pattern_order(self):
        plan = ExplorationPlan.build(atlas.FOUR_PATH, order=[1, 0, 2, 3])
        # stack is per-level; output must be indexed by pattern vertex.
        out = plan.match_to_pattern_order([10, 11, 12, 13])
        assert out[1] == 10 and out[0] == 11 and out[2] == 12 and out[3] == 13


class TestSymmetryBreaking:
    def test_without_breaking_counts_embeddings(self, tiny_graph):
        """No symmetry breaking => each subgraph found |Aut| times."""
        p = atlas.TRIANGLE
        broken = ExplorationPlan.build(p, symmetry_breaking=True)
        unbroken = ExplorationPlan.build(p, symmetry_breaking=False)
        broken_count = run_plan(tiny_graph, broken, EngineStats())
        unbroken_count = run_plan(tiny_graph, unbroken, EngineStats())
        assert unbroken_count == broken_count * len(automorphisms(p))

    def test_star_symmetry(self, small_graph):
        p = atlas.FOUR_STAR
        broken = run_plan(
            small_graph, ExplorationPlan.build(p, symmetry_breaking=True), EngineStats()
        )
        unbroken = run_plan(
            small_graph,
            ExplorationPlan.build(p, symmetry_breaking=False),
            EngineStats(),
        )
        assert unbroken == broken * 6
        assert broken == brute_force_count(small_graph, p)

    def test_every_order_counts_the_same(self, tiny_graph):
        """Counting is order-independent (orders change cost, not results)."""
        from itertools import permutations

        p = atlas.TAILED_TRIANGLE
        expected = brute_force_count(tiny_graph, p)
        valid_orders = 0
        for order in permutations(range(4)):
            # Only connected-prefix orders are supported by the kernel.
            placed: set = set()
            ok = True
            for i, v in enumerate(order):
                if i and not (p.neighbors(v) & placed):
                    ok = False
                    break
                placed.add(v)
            if not ok:
                continue
            valid_orders += 1
            plan = ExplorationPlan.build(p, order=list(order))
            assert run_plan(tiny_graph, plan, EngineStats()) == expected
        assert valid_orders > 4


class TestSingleVertexPlan:
    def test_one_vertex_pattern(self, small_labeled_graph):
        p = Pattern(1, [], labels=[0])
        plan = ExplorationPlan.build(p)
        count = run_plan(small_labeled_graph, plan, EngineStats())
        assert count == len(small_labeled_graph.vertices_by_label[0])
