"""Tests for canonical labeling and pattern IDs (the Bliss substitute)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import atlas
from repro.core.canonical import (
    are_isomorphic,
    canonical_form,
    canonical_permutation,
    pattern_id,
)
from repro.core.pattern import Pattern

from .strategies import patterns, permutations_of


class TestCanonicalForm:
    def test_fixed_point(self):
        for p in atlas.all_connected_patterns(4):
            assert canonical_form(canonical_form(p)) == canonical_form(p)

    @given(patterns(max_n=5), st.data())
    @settings(max_examples=150, deadline=None)
    def test_relabel_invariance(self, p: Pattern, data):
        perm = data.draw(permutations_of(p.n))
        assert canonical_form(p) == canonical_form(p.relabel(perm))

    @given(patterns(max_n=5, labeled=True), st.data())
    @settings(max_examples=100, deadline=None)
    def test_relabel_invariance_labeled(self, p: Pattern, data):
        perm = data.draw(permutations_of(p.n))
        assert canonical_form(p) == canonical_form(p.relabel(perm))

    @given(patterns(max_n=5))
    @settings(max_examples=100, deadline=None)
    def test_canonical_is_isomorphic_to_original(self, p: Pattern):
        canon = canonical_form(p)
        assert canon.n == p.n
        assert canon.num_edges == p.num_edges
        assert len(canon.anti_edges) == len(p.anti_edges)
        perm = canonical_permutation(p)
        assert p.relabel(perm) == canon


class TestPatternIds:
    def test_ids_distinguish_motifs(self):
        ids = {pattern_id(p) for p in atlas.all_connected_patterns(6)}
        assert len(ids) == 112  # all 6-vertex topologies get distinct IDs

    def test_ids_distinguish_variants(self):
        c4 = Pattern.cycle(4)
        assert pattern_id(c4) != pattern_id(c4.vertex_induced())

    def test_ids_distinguish_labelings(self):
        a = Pattern(2, [(0, 1)], labels=[0, 1])
        b = Pattern(2, [(0, 1)], labels=[0, 0])
        assert pattern_id(a) != pattern_id(b)

    def test_label_permutation_same_id(self):
        a = Pattern(2, [(0, 1)], labels=[0, 1])
        b = Pattern(2, [(0, 1)], labels=[1, 0])
        assert pattern_id(a) == pattern_id(b)

    def test_id_is_64_bit(self):
        assert 0 <= pattern_id(Pattern.clique(5)) < 2**64

    @given(patterns(max_n=5), st.data())
    @settings(max_examples=100, deadline=None)
    def test_id_relabel_invariant(self, p: Pattern, data):
        perm = data.draw(permutations_of(p.n))
        assert pattern_id(p) == pattern_id(p.relabel(perm))


class TestIsomorphismCheck:
    def test_positive(self):
        a = Pattern(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        b = Pattern(4, [(0, 2), (2, 1), (1, 3), (0, 3)])
        assert are_isomorphic(a, b)

    def test_negative_structure(self):
        assert not are_isomorphic(Pattern.path(4), Pattern.star(4))

    def test_negative_size(self):
        assert not are_isomorphic(Pattern.clique(3), Pattern.clique(4))

    def test_anti_edges_matter(self):
        c4 = Pattern.cycle(4)
        assert not are_isomorphic(c4, c4.vertex_induced())

    def test_labels_matter(self):
        a = Pattern(2, [(0, 1)], labels=[0, 0])
        b = Pattern(2, [(0, 1)], labels=[0, 1])
        assert not are_isomorphic(a, b)

    def test_regular_vertex_transitive_case(self):
        # Cycles are the canonicalizer's worst case (one big color class).
        c8a = Pattern.cycle(8)
        c8b = c8a.relabel([3, 6, 1, 4, 7, 2, 5, 0])
        assert are_isomorphic(c8a, c8b)
