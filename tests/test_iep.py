"""Tests for GraphPi-style IEP counting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import atlas
from repro.core.pattern import Pattern
from repro.engines.base import EngineStats
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.graphpi.iep import (
    iep_suffix_length,
    ordered_distinct_count,
    run_iep_count,
)
from repro.engines.plan import ExplorationPlan

from .oracle import brute_force_count
from .strategies import connected_skeletons, data_graphs


class TestOrderedDistinctCount:
    @given(
        st.lists(
            st.sets(st.integers(0, 12), min_size=0, max_size=8),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_exhaustive(self, raw_sets):
        """IEP equals brute-force enumeration of distinct assignments."""
        from itertools import product

        sets = [np.array(sorted(s), dtype=np.int64) for s in raw_sets]
        exhaustive = sum(
            1
            for combo in product(*[s.tolist() for s in sets])
            if len(set(combo)) == len(combo)
        )
        assert ordered_distinct_count(sets, EngineStats()) == exhaustive

    def test_pairwise_formula(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([2, 3, 4], dtype=np.int64)
        # |A||B| - |A ∩ B| = 9 - 2 = 7
        assert ordered_distinct_count([a, b], EngineStats()) == 7

    def test_identical_sets(self):
        c = np.array([1, 2, 3, 4], dtype=np.int64)
        # 4 * 3 * 2 ordered triples of distinct elements.
        assert ordered_distinct_count([c, c, c], EngineStats()) == 24


class TestSuffixDetection:
    def test_star_suffix_is_leaves(self):
        plan = ExplorationPlan.build(atlas.FOUR_STAR)
        assert iep_suffix_length(plan) == 3

    def test_five_star(self):
        plan = ExplorationPlan.build(atlas.FIVE_STAR)
        assert iep_suffix_length(plan) == 4

    def test_clique_has_no_suffix(self):
        plan = ExplorationPlan.build(atlas.FOUR_CLIQUE)
        assert iep_suffix_length(plan) == 0

    def test_tailed_triangle_default_order(self):
        # Default core-first order ends ...vertex1, vertex3 (non-adjacent).
        plan = ExplorationPlan.build(atlas.TAILED_TRIANGLE)
        assert iep_suffix_length(plan) in (0, 2)  # order-dependent


class TestIEPCounting:
    @pytest.mark.parametrize(
        "pattern",
        [atlas.FOUR_STAR, atlas.FIVE_STAR, Pattern.star(6)],
    )
    def test_star_counts_match_oracle(self, pattern, small_graph):
        plan = ExplorationPlan.build(pattern)
        suffix = iep_suffix_length(plan)
        assert suffix >= 2
        count = run_iep_count(small_graph, plan, EngineStats(), suffix)
        assert count == brute_force_count(small_graph, pattern)

    def test_engine_toggles(self, small_graph):
        on = GraphPiEngine()
        off = GraphPiEngine()
        off.use_iep = False
        for p in atlas.all_connected_patterns(4):
            assert on.count(small_graph, p) == off.count(small_graph, p)

    def test_iep_reduces_work_for_stars(self, medium_graph):
        on = GraphPiEngine()
        off = GraphPiEngine()
        off.use_iep = False
        assert on.count(medium_graph, atlas.FOUR_STAR) == off.count(
            medium_graph, atlas.FOUR_STAR
        )
        # The saving is loop iterations (leaf loops become arithmetic);
        # set-op volume may rise slightly from the intersection terms.
        assert on.stats.total_seconds < off.stats.total_seconds

    @given(data_graphs(min_n=6, max_n=12), connected_skeletons(max_n=4))
    @settings(max_examples=20, deadline=None)
    def test_random_patterns_unaffected(self, graph, skel):
        """IEP-on always equals the oracle, whether or not it applies."""
        assert GraphPiEngine().count(graph, skel) == brute_force_count(graph, skel)

    def test_labeled_star(self, small_labeled_graph):
        p = Pattern.star(4, labels=[0, 1, 1, 1])
        assert GraphPiEngine().count(small_labeled_graph, p) == brute_force_count(
            small_labeled_graph, p
        )

    def test_vertex_induced_still_filters(self, small_graph):
        """IEP never applies to the Filter-UDF path (per-match checks)."""
        engine = GraphPiEngine()
        count = engine.count(small_graph, atlas.FOUR_STAR.vertex_induced())
        assert count == brute_force_count(
            small_graph, atlas.FOUR_STAR.vertex_induced()
        )
        assert engine.stats.filter_calls > 0
