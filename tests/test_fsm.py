"""Tests for Frequent Subgraph Mining with MNI support."""

from __future__ import annotations

import pytest

from repro.apps.fsm import mine_frequent_subgraphs
from repro.core.pattern import Pattern
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph

from .oracle import brute_force_mni_support


@pytest.fixture(scope="module")
def labeled_graph():
    """A small labeled graph with a clearly frequent star-of-label-0."""
    edges = [
        (0, 1), (0, 2), (1, 2),
        (2, 3), (3, 4), (4, 5), (5, 2),
        (5, 6), (6, 7), (7, 8), (8, 6),
        (1, 9), (9, 10), (10, 4),
    ]
    labels = [0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0]
    return DataGraph(11, edges, labels=labels, name="fsm-test")


class TestFSMBasics:
    def test_requires_labels(self, small_graph):
        with pytest.raises(ValueError, match="labeled"):
            mine_frequent_subgraphs(small_graph, support_threshold=1)

    def test_single_edge_level(self, labeled_graph):
        result = mine_frequent_subgraphs(
            labeled_graph, support_threshold=1, max_edges=1, morph=False
        )
        assert result.candidates_per_level[1] == 3  # (0,0), (0,1), (1,1)
        # Every size-1 candidate with support >= 1 appears.
        for p, support in result.frequent.items():
            assert p.num_edges == 1
            assert support == brute_force_mni_support(labeled_graph, p)

    def test_supports_match_oracle(self, labeled_graph):
        result = mine_frequent_subgraphs(
            labeled_graph, support_threshold=2, max_edges=2, morph=False
        )
        assert result.frequent
        for p, support in result.frequent.items():
            assert support == brute_force_mni_support(labeled_graph, p)
            assert support >= 2

    def test_threshold_monotone(self, labeled_graph):
        lo = mine_frequent_subgraphs(labeled_graph, 1, max_edges=2, morph=False)
        hi = mine_frequent_subgraphs(labeled_graph, 3, max_edges=2, morph=False)
        assert set(hi.frequent) <= set(lo.frequent)

    def test_level_structure(self, labeled_graph):
        result = mine_frequent_subgraphs(labeled_graph, 2, max_edges=3, morph=False)
        for level in result.candidates_per_level:
            assert 1 <= level <= 3
        for p in result.frequent:
            assert p.is_edge_induced
            assert p.is_connected

    def test_frequent_at_level(self, labeled_graph):
        result = mine_frequent_subgraphs(labeled_graph, 2, max_edges=2, morph=False)
        level1 = result.frequent_at_level(1)
        assert all(p.num_edges == 1 for p in level1)


class TestFSMWithMorphing:
    def test_morph_equals_baseline(self, labeled_graph):
        base = mine_frequent_subgraphs(labeled_graph, 2, max_edges=3, morph=False)
        morphed = mine_frequent_subgraphs(labeled_graph, 2, max_edges=3, morph=True)
        assert base.frequent == morphed.frequent
        assert base.candidates_per_level == morphed.candidates_per_level

    def test_morph_equals_baseline_small_labeled(self, small_labeled_graph):
        base = mine_frequent_subgraphs(
            small_labeled_graph, 3, max_edges=2, morph=False
        )
        morphed = mine_frequent_subgraphs(
            small_labeled_graph, 3, max_edges=2, morph=True
        )
        assert base.frequent == morphed.frequent


class TestFSMExtension:
    def test_downward_closure_pruning(self, labeled_graph):
        """Extensions only attach labels whose edge pattern is frequent."""
        result = mine_frequent_subgraphs(labeled_graph, 2, max_edges=2, morph=False)
        frequent_pairs = {
            tuple(sorted((p.label(0), p.label(1))))
            for p in result.frequent_at_level(1)
        }
        for p in result.frequent_at_level(2):
            for u, v in p.edges:
                pair = tuple(sorted((p.label(u), p.label(v))))
                assert pair in frequent_pairs

    def test_no_duplicate_candidates(self, labeled_graph):
        """Candidate generation deduplicates by canonical form."""
        result = mine_frequent_subgraphs(labeled_graph, 1, max_edges=3, morph=False)
        # Re-run and compare: deterministic and duplicate-free.
        again = mine_frequent_subgraphs(labeled_graph, 1, max_edges=3, morph=False)
        assert result.candidates_per_level == again.candidates_per_level
        assert set(result.frequent) == set(again.frequent)


class TestFSMStats:
    def test_stats_accumulate(self, labeled_graph):
        engine = PeregrineEngine()
        result = mine_frequent_subgraphs(
            labeled_graph, 2, max_edges=2, engine=engine, morph=False
        )
        assert result.stats.udf_calls > 0  # MNI is a per-match UDF
        assert result.total_seconds > 0.0
