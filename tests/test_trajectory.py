"""Trajectory store + regression gate, on fully synthetic histories.

No test here asserts on wall-clock measurements: records are built from
hand-written samples, so the separation the gate promises (a 2× slowdown
flagged ``regressed`` while ±5% jitter stays ``unchanged``) is proven
deterministically, exactly as the module docstrings claim.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import ComparisonRow
from repro.bench.regress import (
    TrajectoryComparison,
    WorkloadVerdict,
    compare_to_history,
)
from repro.bench.trajectory import (
    SCHEMA_VERSION,
    BenchRecord,
    EnvFingerprint,
    TrialSummary,
    WorkloadStats,
    iqr,
    list_record_paths,
    load_record,
    load_trajectory,
    mad,
    median,
    next_seq,
    save_record,
    workload_key,
)
from repro.engines.base import EngineStats

FP = EnvFingerprint(
    git_sha="aaaa", python="3.11.0", numpy="1.26.0",
    platform="Linux-x86_64", cpu_count=4,
)


def _row(seconds: float, workload: str = "w", graph: str = "g") -> ComparisonRow:
    """A synthetic trial row whose morphed time is ``seconds``."""
    return ComparisonRow(
        workload=workload,
        graph=graph,
        baseline_seconds=seconds * 2.0,
        morphed_seconds=seconds,
        baseline_stats=EngineStats(),
        morphed_stats=EngineStats(),
        results_equal=True,
        morphed_patterns=1,
        peak_rss_kib=2048,
        baseline_rss_delta_kib=100,
        morphed_rss_delta_kib=50,
        transform_seconds=0.1 * seconds,
        match_seconds=0.8 * seconds,
        convert_seconds=0.1 * seconds,
    )


def _stats(
    morphed_median: float,
    morphed_mad: float = 0.0,
    stage_seconds: dict | None = None,
    rank_agreement: float | None = None,
) -> WorkloadStats:
    summary = TrialSummary(
        median=morphed_median, mad=morphed_mad, iqr=2 * morphed_mad,
        best=morphed_median - morphed_mad, worst=morphed_median + morphed_mad,
    )
    base = TrialSummary(
        median=2 * morphed_median, mad=morphed_mad, iqr=2 * morphed_mad,
        best=2 * morphed_median, worst=2 * morphed_median,
    )
    return WorkloadStats(
        workload="w", graph="g", trials=3, workers=1,
        morphed=summary, baseline=base,
        stage_seconds=stage_seconds
        or {"transform": 0.1 * morphed_median, "match": 0.8 * morphed_median,
            "convert": 0.1 * morphed_median, "executor": 0.0},
        rank_agreement=rank_agreement,
    )


def _record(
    seq: int,
    morphed_median: float,
    morphed_mad: float = 0.0,
    stage_seconds: dict | None = None,
    rank_agreement: float | None = None,
    fingerprint: EnvFingerprint = FP,
) -> BenchRecord:
    stats = _stats(morphed_median, morphed_mad, stage_seconds, rank_agreement)
    return BenchRecord(
        seq=seq, created="2026-01-01T00:00:00+00:00", fingerprint=fingerprint,
        workloads={stats.key: stats},
    )


class TestRobustStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_ignores_outlier(self):
        # One wildly slow trial barely moves the robust noise scale.
        assert mad([1.0, 1.0, 1.0, 100.0]) == 0.0
        assert mad([1.0, 1.1, 0.9]) == pytest.approx(0.1)

    def test_iqr(self):
        assert iqr([1.0, 2.0, 3.0, 4.0]) == pytest.approx(1.5)
        assert iqr([5.0]) == 0.0

    def test_trial_summary_from_samples(self):
        s = TrialSummary.from_samples([1.0, 1.1, 0.9])
        assert s.median == 1.0
        assert s.mad == pytest.approx(0.1)
        assert s.best == 0.9 and s.worst == pytest.approx(1.1)


class TestWorkloadStats:
    def test_from_rows_condenses_trials(self):
        rows = [_row(1.0), _row(1.1), _row(0.9)]
        stats = WorkloadStats.from_rows(rows)
        assert stats.trials == 3
        assert stats.morphed.median == 1.0
        assert stats.morphed.mad == pytest.approx(0.1)
        assert stats.baseline.median == 2.0
        assert stats.speedup == pytest.approx(2.0)
        assert stats.stage_seconds["match"] == pytest.approx(0.8)
        assert stats.key == workload_key("w", "g") == "w@g"
        assert stats.peak_rss_kib == 2048

    def test_from_rows_rejects_mixed_workloads(self):
        with pytest.raises(ValueError, match="mix"):
            WorkloadStats.from_rows([_row(1.0), _row(1.0, workload="other")])

    def test_from_rows_rejects_empty(self):
        with pytest.raises(ValueError):
            WorkloadStats.from_rows([])


class TestRecordStore:
    def test_round_trip(self, tmp_path):
        record = BenchRecord.from_rows(
            [_row(1.0), _row(1.2)], meta={"source": "test"},
            rank_agreements={"w@g": 0.9}, fingerprint=FP,
        )
        path = save_record(record, root=tmp_path)
        assert path.name == "BENCH_0001.json"
        loaded = load_record(path)
        assert loaded.seq == 1
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.fingerprint == FP
        assert loaded.meta == {"source": "test"}
        stats = loaded.workloads["w@g"]
        assert stats.morphed.median == pytest.approx(1.1)
        assert stats.rank_agreement == pytest.approx(0.9)
        assert stats.counters["matches"] == 0.0
        # Byte-identical on a second round trip (stable serialization).
        assert loaded.to_json() == record.to_json()

    def test_seq_numbering_and_order(self, tmp_path):
        save_record(_record(0, 1.0), root=tmp_path)
        save_record(_record(0, 1.0), root=tmp_path)
        paths = list_record_paths(tmp_path)
        assert [p.name for p in paths] == ["BENCH_0001.json", "BENCH_0002.json"]
        assert next_seq(tmp_path) == 3
        trajectory = load_trajectory(tmp_path)
        assert [r.seq for r in trajectory] == [1, 2]

    def test_explicit_seq_preserved(self, tmp_path):
        save_record(_record(7, 1.0), root=tmp_path)
        assert list_record_paths(tmp_path)[0].name == "BENCH_0007.json"
        assert next_seq(tmp_path) == 8

    def test_future_schema_rejected(self, tmp_path):
        record = _record(1, 1.0)
        blob = record.to_json()
        blob["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "BENCH_0001.json"
        path.write_text(json.dumps(blob))
        with pytest.raises(ValueError, match="schema_version"):
            load_record(path)

    def test_empty_store(self, tmp_path):
        assert list_record_paths(tmp_path) == []
        assert load_trajectory(tmp_path) == []
        assert next_seq(tmp_path) == 1


class TestFingerprint:
    def test_git_sha_not_a_mismatch(self):
        other = EnvFingerprint(
            git_sha="bbbb", python=FP.python, numpy=FP.numpy,
            platform=FP.platform, cpu_count=FP.cpu_count,
        )
        assert FP.mismatches(other) == []

    def test_environment_change_is_a_mismatch(self):
        other = EnvFingerprint(
            git_sha=FP.git_sha, python="3.12.0", numpy=FP.numpy,
            platform=FP.platform, cpu_count=2,
        )
        mismatches = FP.mismatches(other)
        assert any("python" in m for m in mismatches)
        assert any("cpu_count" in m for m in mismatches)

    def test_capture_smoke(self):
        fp = EnvFingerprint.capture()
        assert fp.python
        assert fp.cpu_count >= 1
        assert fp.to_json() == EnvFingerprint.from_json(fp.to_json()).to_json()

    def test_mismatch_warning_in_comparison(self):
        history = [_record(1, 1.0), _record(2, 1.0)]
        candidate = _record(
            3, 1.0,
            fingerprint=EnvFingerprint(
                git_sha="cccc", python="3.12.0", numpy=FP.numpy,
                platform=FP.platform, cpu_count=FP.cpu_count,
            ),
        )
        comparison = compare_to_history(candidate, history)
        assert comparison.warnings
        assert "advisory" in comparison.warnings[0]
        # A new sha alone must NOT warn — different commits are the point.
        clean = compare_to_history(_record(3, 1.0), history)
        assert clean.warnings == []


class TestRegressionGate:
    #: A jittery-but-stable history: ±5% around a 1.0s median, with
    #: per-record trial MADs of 3%.
    HISTORY = [
        _record(seq, m, morphed_mad=0.03)
        for seq, m in enumerate([1.00, 1.05, 0.95, 1.02, 0.98], start=1)
    ]

    def test_jitter_stays_unchanged(self):
        for wobble in (0.95, 1.0, 1.05):
            candidate = _record(9, wobble, morphed_mad=0.03)
            comparison = compare_to_history(candidate, self.HISTORY)
            (verdict,) = comparison.verdicts
            assert verdict.verdict == "unchanged", wobble
            assert comparison.ok

    def test_double_time_is_regressed(self):
        candidate = _record(9, 2.0, morphed_mad=0.03)
        comparison = compare_to_history(candidate, self.HISTORY)
        (verdict,) = comparison.verdicts
        assert verdict.verdict == "regressed"
        assert verdict.ratio == pytest.approx(2.0)
        assert not comparison.ok
        assert comparison.regressed == [verdict]

    def test_half_time_is_improved(self):
        candidate = _record(9, 0.5, morphed_mad=0.03)
        comparison = compare_to_history(candidate, self.HISTORY)
        assert comparison.verdicts[0].verdict == "improved"
        assert comparison.ok  # improvements never fail the gate

    def test_quiet_history_still_tolerates_small_jitter(self):
        # Identical history medians ⇒ MAD 0; the relative floor keeps a
        # +5% wobble inside the band (floor 3% × k 4 = 12%).
        history = [_record(seq, 1.0) for seq in range(1, 5)]
        comparison = compare_to_history(_record(9, 1.05), history)
        assert comparison.verdicts[0].verdict == "unchanged"
        comparison = compare_to_history(_record(9, 1.2), history)
        assert comparison.verdicts[0].verdict == "regressed"

    def test_stage_attribution_pins_the_guilty_stage(self):
        # History: 1.0s total, split 0.1 transform / 0.8 match / 0.1
        # convert. Candidate: match alone doubled.
        candidate = _record(
            9, 1.8, morphed_mad=0.03,
            stage_seconds={"transform": 0.1, "match": 1.6,
                           "convert": 0.1, "executor": 0.0},
        )
        comparison = compare_to_history(candidate, self.HISTORY)
        (verdict,) = comparison.verdicts
        assert verdict.verdict == "regressed"
        by_stage = {s.stage: s.verdict for s in verdict.stages}
        assert by_stage["match"] == "regressed"
        assert by_stage["transform"] == "unchanged"
        assert by_stage["convert"] == "unchanged"
        assert "match regressed" in verdict.attribution()
        assert "transform" not in verdict.attribution()
        assert "match regressed" in verdict.render()

    def test_new_workload_verdict(self):
        comparison = compare_to_history(_record(9, 1.0), [])
        (verdict,) = comparison.verdicts
        assert verdict.verdict == "new"
        assert verdict.ratio is None
        assert "new" in verdict.render()
        assert comparison.ok

    def test_history_after_candidate_ignored(self):
        # Passing the whole store is safe: records with seq >= the
        # candidate's (including itself) are not history.
        store = self.HISTORY + [_record(9, 2.0, morphed_mad=0.03)]
        comparison = compare_to_history(store[-1], store)
        assert comparison.verdicts[0].verdict == "regressed"
        first = compare_to_history(self.HISTORY[0], self.HISTORY)
        assert first.verdicts[0].verdict == "new"

    def test_rank_agreement_drift_flagged(self):
        history = [
            _record(seq, 1.0, morphed_mad=0.03, rank_agreement=ra)
            for seq, ra in enumerate([0.9, 0.85, 0.95], start=1)
        ]
        drifted = compare_to_history(
            _record(9, 1.0, morphed_mad=0.03, rank_agreement=0.5), history
        )
        assert drifted.drift == {"w@g": "drifted"}
        assert not drifted.ok  # wall time fine, but the cost model broke
        assert any("drift" in n for n in drifted.verdicts[0].notes)
        assert "drifted" in drifted.render()

        stable = compare_to_history(
            _record(9, 1.0, morphed_mad=0.03, rank_agreement=0.88), history
        )
        assert stable.drift == {"w@g": "stable"}
        assert stable.ok

    def test_render_summary_line(self):
        comparison = compare_to_history(
            _record(9, 2.0, morphed_mad=0.03), self.HISTORY
        )
        assert "# 1 regressed, 0 improved, 0 unchanged, 0 new" in (
            comparison.render()
        )

    def test_empty_comparison_renders(self):
        comparison = TrajectoryComparison()
        assert "(no workloads to compare)" in comparison.render()
        assert comparison.ok


class TestCli:
    def _seed(self, tmp_path, medians):
        for m in medians:
            save_record(_record(0, m, morphed_mad=0.03), root=tmp_path)

    def test_compare_unchanged_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        self._seed(tmp_path, [1.00, 1.05, 0.95, 1.02])
        assert main(["bench", "compare", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "w@g: unchanged" in out
        assert "0 regressed" in out

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        self._seed(tmp_path, [1.00, 1.05, 0.95, 2.4])
        assert main(["bench", "compare", "--root", str(tmp_path)]) == 1
        assert "regressed" in capsys.readouterr().out
        # --advisory reports but never fails (the 1-core CI mode).
        assert main(
            ["bench", "compare", "--advisory", "--root", str(tmp_path)]
        ) == 0

    def test_compare_empty_store_errors(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no BENCH"):
            main(["bench", "compare", "--root", str(tmp_path)])

    def test_compare_explicit_record(self, tmp_path, capsys):
        from repro.cli import main

        self._seed(tmp_path, [1.0, 1.0, 1.0])
        candidate = tmp_path / "BENCH_0003.json"
        assert main(
            ["bench", "compare", "--root", str(tmp_path),
             "--record", str(candidate)]
        ) == 0
        assert "unchanged" in capsys.readouterr().out

    def test_record_round_trips_through_compare(self, tmp_path, capsys):
        """End-to-end: measure a real (tiny) suite, save, re-load, gate."""
        from repro.bench.trajectory import WorkloadSpec, collect_record
        from repro.core.atlas import TRIANGLE
        from repro.engines.peregrine.engine import PeregrineEngine
        from repro.graph.generators import power_law_cluster

        graph = power_law_cluster(60, 3, 0.4, seed=3, name="tiny")
        suite = [
            WorkloadSpec(
                "peregrine/tri", PeregrineEngine,
                lambda: graph, lambda: [TRIANGLE],
            )
        ]
        record = collect_record(trials=2, suite=suite)
        assert record.meta["source"] == "bench-record"
        stats = record.workloads["peregrine/tri@tiny"]
        assert stats.trials == 2
        assert stats.morphed.median > 0
        path = save_record(record, root=tmp_path)
        loaded = load_record(path)
        comparison = compare_to_history(loaded, load_trajectory(tmp_path))
        assert comparison.verdicts[0].verdict == "new"
