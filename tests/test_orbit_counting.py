"""Tests for graphlet orbit counting."""

from __future__ import annotations

from itertools import combinations, permutations

import numpy as np
import pytest

from repro.apps.orbit_counting import (
    OrbitIndex,
    most_similar_vertices,
    orbit_degree_vectors,
    orbit_signature,
)
from repro.core.isomorphism import vertex_orbits
from repro.graph.datagraph import DataGraph


def brute_force_orbit_matrix(graph: DataGraph, index: OrbitIndex) -> np.ndarray:
    """Independent orbit tally: enumerate vertex subsets directly."""
    from repro.core.pattern import normalize_edge

    matrix = np.zeros((graph.num_vertices, index.num_orbits), dtype=np.int64)
    for midx, motif in enumerate(index.motifs):
        orbit_of = index.orbit_of[midx]
        for combo in combinations(range(graph.num_vertices), motif.n):
            seen_images = set()
            for perm in permutations(combo):
                ok = all(
                    graph.has_edge(perm[u], perm[v]) for u, v in motif.edges
                ) and not any(
                    graph.has_edge(perm[u], perm[v]) for u, v in motif.anti_edges
                )
                if not ok:
                    continue
                image = tuple(
                    sorted(
                        normalize_edge(perm[u], perm[v]) for u, v in motif.edges
                    )
                )
                if image in seen_images:
                    continue  # same occurrence via an automorphism
                seen_images.add(image)
                for u in range(motif.n):
                    matrix[perm[u], orbit_of[u]] += 1
    return matrix


class TestOrbitIndex:
    @pytest.mark.parametrize("size,expected", [(2, 1), (3, 3), (4, 11)])
    def test_classic_orbit_counts(self, size, expected):
        """The graphlet literature's orbit tallies (orbits 0-14)."""
        assert OrbitIndex.for_size(size).num_orbits == expected

    def test_orbit_of_is_constant_on_orbits(self):
        index = OrbitIndex.for_size(4)
        for midx, motif in enumerate(index.motifs):
            for orbit in vertex_orbits(motif.edge_induced()):
                ids = {index.orbit_of[midx][v] for v in orbit}
                assert len(ids) == 1

    def test_names_unique(self):
        index = OrbitIndex.for_size(4)
        assert len(set(index.names)) == index.num_orbits


class TestOrbitVectors:
    def test_matches_brute_force(self, tiny_graph):
        matrix, index = orbit_degree_vectors(tiny_graph, 3)
        expected = brute_force_orbit_matrix(tiny_graph, index)
        assert (matrix == expected).all()

    def test_matches_brute_force_size4(self, tiny_graph):
        matrix, index = orbit_degree_vectors(tiny_graph, 4)
        expected = brute_force_orbit_matrix(tiny_graph, index)
        assert (matrix == expected).all()

    def test_row_sums_are_size_times_counts(self, small_graph):
        """Each occurrence contributes `size` vertex-role incidences."""
        from repro.apps.motif_counting import count_motifs

        matrix, _index = orbit_degree_vectors(small_graph, 3)
        total_motifs = sum(count_motifs(small_graph, 3).results.values())
        assert matrix.sum() == 3 * total_motifs

    def test_star_center_orbit(self):
        star = DataGraph(5, [(0, 1), (0, 2), (0, 3), (0, 4)], name="star")
        matrix, index = orbit_degree_vectors(star, 3)
        # Vertex 0 is the center of C(4,2)=6 induced paths.
        path_center = [
            index.orbit_of[m][v]
            for m, motif in enumerate(index.motifs)
            if motif.num_edges == 2
            for v in range(3)
            if motif.degree(v) == 2
        ][0]
        assert matrix[0, path_center] == 6
        assert matrix[1, path_center] == 0


class TestConvenience:
    def test_signature_keys(self, tiny_graph):
        sig = orbit_signature(tiny_graph, 0, size=3)
        assert len(sig) == 3
        assert all(isinstance(v, int) for v in sig.values())

    def test_similarity_excludes_self(self, small_graph):
        sims = most_similar_vertices(small_graph, 3, size=3, top=4)
        assert all(v != 3 for v, _s in sims)
        assert len(sims) <= 4
        # Similarities sorted descending.
        values = [s for _v, s in sims]
        assert values == sorted(values, reverse=True)
