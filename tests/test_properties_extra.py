"""Cross-cutting property tests: randomized invariants over the stack.

These complement the per-module tests with whole-pipeline properties on
random graphs, random patterns and random cost models.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import atlas
from repro.core.aggregation import CountAggregation, MNIAggregation
from repro.core.costmodel import CostModel, EngineCostProfile, GraphModel
from repro.core.equations import item_of, solve_query
from repro.core.pattern import Pattern
from repro.core.selection import select_alternative_patterns
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.peregrine.engine import PeregrineEngine

from .oracle import brute_force_count, brute_force_mni
from .strategies import connected_skeletons, data_graphs


class TestRandomCostModels:
    """Algorithm 1 must produce derivable selections for ANY cost table."""

    class RandomCostModel(CostModel):
        def __init__(self, rng_values):
            super().__init__(
                GraphModel(
                    num_vertices=50, edge_prob=0.1, avg_degree=5,
                    biased_degree=8, closure_prob=0.2, high_degree_threshold=9,
                )
            )
            self._values = rng_values
            self._cache: dict = {}

        def pattern_cost(self, skel: Pattern, variant: str) -> float:
            from repro.core.canonical import pattern_id

            key = (pattern_id(skel), variant if not skel.is_clique else "E")
            if key not in self._cache:
                self._cache[key] = self._values[len(self._cache) % len(self._values)]
            return self._cache[key]

    @given(
        st.lists(st.floats(0.1, 100.0), min_size=5, max_size=30),
        st.floats(0.2, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_counting_selection_always_derivable(self, costs, margin):
        queries = list(atlas.motif_patterns(4))
        model = self.RandomCostModel(costs)
        result = select_alternative_patterns(
            queries, model, CountAggregation(), margin=margin
        )
        for q in queries:
            solve_query(item_of(q), result.measured)  # must never raise

    @given(st.lists(st.floats(0.1, 100.0), min_size=5, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_mni_selection_always_legal(self, costs):
        from repro.core.generation import skeleton, superpattern_closure
        from repro.core.equations import normalize_item
        from repro.core.sdag import VERTEX_INDUCED

        queries = [atlas.FOUR_STAR, atlas.FOUR_PATH, atlas.TAILED_TRIANGLE]
        model = self.RandomCostModel(costs)
        result = select_alternative_patterns(
            queries, model, MNIAggregation(), margin=1.0
        )
        for q in queries:
            if result.morphed[q]:
                for sup in superpattern_closure(skeleton(q)):
                    assert normalize_item(sup, VERTEX_INDUCED) in result.measured
        query_items = {item_of(q) for q in queries}
        for item in result.measured:
            skel, variant = item
            # E-variant items are legal only as directly-measured queries
            # (or cliques, which are both variants at once).
            assert (
                variant == VERTEX_INDUCED
                or skel.is_clique
                or item in query_items
            )


class TestRandomizedEndToEnd:
    @given(data_graphs(min_n=6, max_n=12), st.integers(0, 1_000_000))
    @settings(max_examples=15, deadline=None)
    def test_forced_morph_still_exact(self, graph, seed):
        """Even a forced (blind) morph must return exact counts."""
        from repro.morph.session import MorphingSession

        queries = list(atlas.motif_patterns(3))
        session = MorphingSession(PeregrineEngine(), enabled=True, margin=1e9)
        result = session.run(graph, queries)
        for q in queries:
            assert result.results[q] == brute_force_count(graph, q)

    @given(data_graphs(min_n=6, max_n=11, labeled=True), connected_skeletons(max_n=3, labeled=True))
    @settings(max_examples=15, deadline=None)
    def test_labeled_mni_morph_exact(self, graph, skel):
        from repro.morph.session import MorphingSession

        session = MorphingSession(
            PeregrineEngine(), aggregation=MNIAggregation(), enabled=True, margin=1e9
        )
        result = session.run(graph, [skel])
        assert result.results[skel] == brute_force_mni(graph, skel)

    @given(data_graphs(min_n=6, max_n=12))
    @settings(max_examples=15, deadline=None)
    def test_autozero_merged_morphed_counts(self, graph):
        from repro.morph.session import MorphingSession

        queries = list(atlas.motif_patterns(4))
        result = MorphingSession(AutoZeroEngine(), enabled=True).run(graph, queries)
        for q in queries:
            assert result.results[q] == brute_force_count(graph, q)


class TestStreamingProperties:
    @given(data_graphs(min_n=6, max_n=11), connected_skeletons(max_n=4))
    @settings(max_examples=12, deadline=None)
    def test_streaming_morph_covers_exact_occurrences(self, graph, skel):
        from repro.morph.session import MorphingSession

        query = skel.edge_induced()
        seen: set = set()

        def process(pattern, match):
            seen.add(
                frozenset(
                    tuple(sorted((match[u], match[v]))) for u, v in pattern.edges
                )
            )

        session = MorphingSession(PeregrineEngine(), enabled=True, margin=1e9)
        result = session.run_streaming(graph, [query], process)
        assert result.results[query] == brute_force_count(graph, query)
        assert len(seen) == brute_force_count(graph, query)


class TestCanonicalStress:
    @given(connected_skeletons(min_n=6, max_n=7))
    @settings(max_examples=20, deadline=None)
    def test_larger_patterns_canonicalize(self, skel):
        """6-7 vertex patterns (the §7.4 sizes) canonicalize consistently."""
        import random

        from repro.core.canonical import pattern_id

        perm = list(range(skel.n))
        random.Random(42).shuffle(perm)
        assert pattern_id(skel) == pattern_id(skel.relabel(perm))

    @given(connected_skeletons(max_n=5), connected_skeletons(max_n=5))
    @settings(max_examples=60, deadline=None)
    def test_id_collision_free_on_distinct_structures(self, a, b):
        from repro.core.canonical import are_isomorphic, pattern_id

        if are_isomorphic(a, b):
            assert pattern_id(a) == pattern_id(b)
        else:
            assert pattern_id(a) != pattern_id(b)
