"""Tests for subgraph isomorphism, automorphisms and symmetry breaking."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings

from repro.core import atlas
from repro.core.isomorphism import (
    automorphisms,
    matches_of_pattern_in,
    occurrence_count,
    occurrence_embeddings,
    subgraph_isomorphisms,
    symmetry_breaking_conditions,
)
from repro.core.pattern import Pattern, normalize_edge

from .strategies import connected_skeletons, patterns


def _to_nx(p: Pattern) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(p.n))
    g.add_edges_from(p.edges)
    if p.labels is not None:
        nx.set_node_attributes(g, {v: p.labels[v] for v in range(p.n)}, "label")
    return g


class TestAutomorphisms:
    def test_known_group_sizes(self):
        assert len(automorphisms(Pattern.clique(4))) == 24
        assert len(automorphisms(Pattern.cycle(4))) == 8
        assert len(automorphisms(Pattern.star(4))) == 6
        assert len(automorphisms(Pattern.path(4))) == 2
        assert len(automorphisms(atlas.TAILED_TRIANGLE)) == 2

    def test_labels_break_symmetry(self):
        labeled = Pattern.clique(3, labels=[0, 0, 1])
        assert len(automorphisms(labeled)) == 2

    @given(patterns(max_n=5))
    @settings(max_examples=80, deadline=None)
    def test_group_matches_networkx(self, p: Pattern):
        ours = len(automorphisms(p.edge_induced()))
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            _to_nx(p), _to_nx(p), node_match=lambda a, b: a.get("label") == b.get("label")
        )
        theirs = sum(1 for _ in matcher.isomorphisms_iter())
        assert ours == theirs

    @given(patterns(max_n=5))
    @settings(max_examples=50, deadline=None)
    def test_group_closure(self, p: Pattern):
        group = automorphisms(p.edge_induced())
        as_set = set(group)
        for f in group:
            for g in group:
                composed = tuple(f[g[v]] for v in range(p.n))
                assert composed in as_set


class TestSubgraphIsomorphisms:
    def test_paper_coefficients(self):
        # Figure 7: the unique-occurrence coefficients.
        assert occurrence_count(atlas.FOUR_CYCLE, atlas.FOUR_CLIQUE) == 3
        assert occurrence_count(atlas.TAILED_TRIANGLE, atlas.CHORDAL_FOUR_CYCLE) == 4
        assert occurrence_count(atlas.TAILED_TRIANGLE, atlas.FOUR_CLIQUE) == 12
        assert occurrence_count(atlas.FOUR_STAR, atlas.FOUR_CLIQUE) == 4
        assert occurrence_count(atlas.FOUR_PATH, atlas.FOUR_CLIQUE) == 12
        assert occurrence_count(atlas.CHORDAL_FOUR_CYCLE, atlas.FOUR_CLIQUE) == 6

    def test_self_occurrence_is_one(self):
        for p in atlas.all_connected_patterns(4):
            assert occurrence_count(p, p) == 1

    def test_no_occurrence_in_sparser(self):
        assert occurrence_count(atlas.FOUR_CLIQUE, atlas.FOUR_CYCLE) == 0

    def test_embedding_count_relation(self):
        # |phi(p, q)| = occurrences * |Aut(p)|
        p, q = atlas.FOUR_CYCLE, atlas.FOUR_CLIQUE
        assert len(subgraph_isomorphisms(p, q)) == 3 * len(automorphisms(p))

    def test_labels_respected(self):
        p = Pattern(2, [(0, 1)], labels=[0, 1])
        q = Pattern.clique(3, labels=[0, 1, 1])
        assert occurrence_count(p, q) == 2

    def test_embeddings_are_valid_maps(self):
        p, q = atlas.TAILED_TRIANGLE, atlas.FOUR_CLIQUE
        for f in occurrence_embeddings(p, q):
            assert sorted(f) == sorted(set(f))  # injective
            for u, v in p.edges:
                assert normalize_edge(f[u], f[v]) in q.edges

    def test_embeddings_distinct_images(self):
        p, q = atlas.FOUR_CYCLE, atlas.FOUR_CLIQUE
        images = {
            frozenset(normalize_edge(f[u], f[v]) for u, v in p.edges)
            for f in occurrence_embeddings(p, q)
        }
        assert len(images) == 3


class TestSymmetryBreaking:
    @given(connected_skeletons(max_n=5))
    @settings(max_examples=80, deadline=None)
    def test_conditions_pick_exactly_one_embedding(self, p: Pattern):
        """Among all automorphic images of any assignment, exactly one
        satisfies the partial order — the uniqueness guarantee engines
        rely on."""
        conditions = symmetry_breaking_conditions(p)
        group = automorphisms(p)
        # Work with an arbitrary injective assignment of distinct ids.
        base = tuple(range(10, 10 + p.n))
        satisfying = 0
        for g in group:
            assignment = [0] * p.n
            for v in range(p.n):
                assignment[g[v]] = base[v]
            if all(assignment[u] < assignment[v] for u, v in conditions):
                satisfying += 1
        assert satisfying == 1

    def test_asymmetric_pattern_has_no_conditions(self):
        asym = Pattern(4, [(0, 1), (1, 2), (2, 3), (0, 2)])  # tailed triangle
        # Tailed triangle has a 2-element group -> exactly one condition.
        assert len(symmetry_breaking_conditions(asym)) == 1

    def test_clique_conditions_total_order(self):
        conds = symmetry_breaking_conditions(Pattern.clique(4))
        assert len(conds) == 6  # all pairs ordered


class TestMatchesIn:
    def test_edge_induced(self):
        assert matches_of_pattern_in(
            atlas.FOUR_CYCLE, atlas.FOUR_CLIQUE, require_induced=False
        ) == 3

    def test_vertex_induced(self):
        assert matches_of_pattern_in(
            atlas.FOUR_CYCLE, atlas.FOUR_CLIQUE, require_induced=True
        ) == 0
        assert matches_of_pattern_in(
            atlas.FOUR_CYCLE, atlas.FOUR_CYCLE, require_induced=True
        ) == 1
