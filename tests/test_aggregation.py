"""Tests for the aggregation abstraction (λ, ⊕) and its laws."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import atlas
from repro.core.aggregation import (
    CountAggregation,
    ExistenceAggregation,
    MatchListAggregation,
    MNIAggregation,
)
from repro.core.pattern import Pattern


class TestCount:
    def test_laws(self):
        agg = CountAggregation()
        assert agg.zero() == 0
        assert agg.combine(3, 4) == 7
        assert agg.scale(5, 3) == 15
        assert agg.scale(5, -2) == -10  # invertible
        assert agg.from_match(atlas.TRIANGLE, (1, 2, 3)) == 1
        assert agg.permute(9, (2, 0, 1)) == 9
        assert agg.invertible
        assert agg.per_match_cost == 0.0


class TestMNI:
    def test_from_match_and_combine(self):
        agg = MNIAggregation()
        a = agg.from_match(atlas.TRIANGLE, (5, 6, 7))
        b = agg.from_match(atlas.TRIANGLE, (5, 8, 9))
        joined = agg.combine(a, b)
        assert joined == (
            frozenset({5}),
            frozenset({6, 8}),
            frozenset({7, 9}),
        )

    def test_zero_is_identity(self):
        agg = MNIAggregation()
        v = agg.from_match(atlas.TRIANGLE, (1, 2, 3))
        assert agg.combine(agg.zero(), v) == v
        assert agg.combine(v, agg.zero()) == v

    def test_width_mismatch_rejected(self):
        agg = MNIAggregation()
        with pytest.raises(ValueError):
            agg.combine(
                agg.from_match(atlas.TRIANGLE, (1, 2, 3)),
                agg.from_match(atlas.FOUR_CLIQUE, (1, 2, 3, 4)),
            )

    def test_permute_reindexes_columns(self):
        agg = MNIAggregation()
        value = (frozenset({1}), frozenset({2}), frozenset({3}))
        assert agg.permute(value, (2, 0, 1)) == (
            frozenset({3}),
            frozenset({1}),
            frozenset({2}),
        )

    def test_support(self):
        assert MNIAggregation.support(()) == 0
        assert (
            MNIAggregation.support((frozenset({1, 2}), frozenset({3}))) == 1
        )

    def test_finalize_closes_under_automorphisms(self):
        # Path 0-1-2 has the flip automorphism (0<->2).
        agg = MNIAggregation()
        path = Pattern.path(3)
        value = (frozenset({10}), frozenset({11}), frozenset({12}))
        closed = agg.finalize(path, value)
        assert closed == (
            frozenset({10, 12}),
            frozenset({11}),
            frozenset({10, 12}),
        )
        # Idempotent.
        assert agg.finalize(path, closed) == closed

    def test_finalize_noop_for_asymmetric(self):
        agg = MNIAggregation()
        tt = atlas.TAILED_TRIANGLE
        labeled = tt.with_labels([0, 1, 2, 3])  # labels kill all symmetry
        value = tuple(frozenset({i}) for i in range(4))
        assert agg.finalize(labeled, value) == value

    def test_not_invertible(self):
        with pytest.raises(TypeError):
            MNIAggregation().scale((frozenset({1}),), -1)


class TestMatchList:
    def test_collect_and_permute(self):
        agg = MatchListAggregation()
        v = agg.combine(
            agg.from_match(atlas.TRIANGLE, (1, 2, 3)),
            agg.from_match(atlas.TRIANGLE, (4, 5, 6)),
        )
        assert v == [(1, 2, 3), (4, 5, 6)]
        assert agg.permute(v, (1, 2, 0)) == [(2, 3, 1), (5, 6, 4)]

    def test_zero(self):
        assert MatchListAggregation().zero() == []


class TestExistence:
    def test_or_semantics(self):
        agg = ExistenceAggregation()
        assert agg.zero() is False
        assert agg.combine(False, True) is True
        assert agg.from_match(atlas.TRIANGLE, (1, 2, 3)) is True
        assert agg.permute(True, (0, 1, 2)) is True


@given(st.lists(st.integers(0, 50), min_size=0, max_size=12))
@settings(max_examples=50, deadline=None)
def test_count_combine_commutative_associative(values):
    agg = CountAggregation()
    total = agg.zero()
    for v in values:
        total = agg.combine(total, v)
    rev = agg.zero()
    for v in reversed(values):
        rev = agg.combine(v, rev)
    assert total == rev == sum(values)


@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(10, 19), st.integers(20, 29)),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=50, deadline=None)
def test_mni_combine_order_independent(matches):
    agg = MNIAggregation()
    fwd = agg.zero()
    for m in matches:
        fwd = agg.combine(fwd, agg.from_match(atlas.TRIANGLE, m))
    back = agg.zero()
    for m in reversed(matches):
        back = agg.combine(agg.from_match(atlas.TRIANGLE, m), back)
    assert fwd == back
