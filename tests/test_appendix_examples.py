"""Walkthroughs of Appendix A: FSM (A.1) and Subgraph Counting (A.2).

The appendix figures use a specific example data graph whose exact edge
list is not recoverable from the paper text, so these tests reproduce the
*mechanics* exactly — the S-DAG shapes, the selection decisions under the
printed cost tables, and the printed conversion arithmetic — and validate
the same pipeline end-to-end on a concrete graph of our own against the
brute-force oracle.
"""

from __future__ import annotations

from repro.core import atlas
from repro.core.aggregation import MNIAggregation
from repro.core.costmodel import CostModel, EngineCostProfile, GraphModel
from repro.core.equations import evaluate, item_of, normalize_item, solve_query
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED, SDag
from repro.core.selection import select_alternative_patterns
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph
from repro.morph.session import MorphingSession

from .oracle import brute_force_count, brute_force_mni


class _TableModel(CostModel):
    """Cost model driven by an explicit (pattern name, variant) table."""

    def __init__(self, table: dict[tuple[str, str], float]):
        super().__init__(
            GraphModel(
                num_vertices=100, edge_prob=0.05, avg_degree=5,
                biased_degree=10, closure_prob=0.2, high_degree_threshold=10,
            )
        )
        self.table = table

    def pattern_cost(self, skel: Pattern, variant: str) -> float:
        if skel.is_clique:
            variant = EDGE_INDUCED
        return self.table[(atlas.pattern_name(skel), variant)]


class TestAppendixA1FSM:
    """A.1: 4-star FSM query morphs into the all-V closure."""

    # Figure 16c's cost table: pa..pf are the 4-star's superpatterns.
    # pa = 4-star, pb/pc = tailed triangles (labeled distinctly in the
    # paper; unlabeled here they collapse), pd/pe = chordal variants,
    # pf = 4-clique. We mirror the *relations*: E costly, V cheap.
    COSTS = {
        ("4S", "E"): 25.0, ("4S", "V"): 4.0,
        ("TT", "E"): 15.0, ("TT", "V"): 3.0,
        ("C4C", "E"): 5.0, ("C4C", "V"): 2.0,
        ("4CL", "E"): 5.0,
    }

    def test_sdag_shape(self):
        dag = SDag.build([atlas.FOUR_STAR])
        names = {atlas.pattern_name(n.skel) for n in dag}
        assert names == {"4S", "TT", "C4C", "4CL"}

    def test_selection_picks_vertex_induced_closure(self):
        agg = MNIAggregation()
        result = select_alternative_patterns(
            [atlas.FOUR_STAR], _TableModel(self.COSTS), agg, margin=1.0
        )
        assert result.morphed[atlas.FOUR_STAR]
        assert result.measured == frozenset(
            {
                normalize_item(atlas.FOUR_STAR, VERTEX_INDUCED),
                normalize_item(atlas.TAILED_TRIANGLE, VERTEX_INDUCED),
                normalize_item(atlas.CHORDAL_FOUR_CYCLE, VERTEX_INDUCED),
                normalize_item(atlas.FOUR_CLIQUE, EDGE_INDUCED),
            }
        )

    def test_mni_conversion_end_to_end(self):
        """Run the whole A.1 pipeline on a concrete labeled graph."""
        edges = [
            (0, 1), (0, 2), (0, 3), (0, 4), (1, 2),
            (4, 5), (4, 6), (4, 7), (6, 7), (2, 5),
        ]
        graph = DataGraph(8, edges, labels=[0] * 8, name="a1")
        query = Pattern.star(4, labels=[0, 0, 0, 0])
        session = MorphingSession(
            PeregrineEngine(), aggregation=MNIAggregation(), enabled=True
        )
        result = session.run(graph, [query])
        assert result.results[query] == brute_force_mni(graph, query)


class TestAppendixA2Counting:
    """A.2: three vertex-induced queries morph to the all-E closure."""

    # Figure 17c's cost table (pa = 4-star, pb = 4-path, pc = 4-cycle,
    # pd = tailed triangle, pe = chordal 4-cycle, pf = 4-clique).
    COSTS = {
        ("4S", "E"): 1.0, ("4S", "V"): 20.0,
        ("4P", "E"): 3.0, ("4P", "V"): 30.0,
        ("C4", "E"): 10.0, ("C4", "V"): 12.0,
        ("TT", "E"): 5.0, ("TT", "V"): 10.0,
        ("C4C", "E"): 5.0, ("C4C", "V"): 9.0,
        ("4CL", "E"): 7.0,
    }

    QUERIES = [
        atlas.FOUR_STAR.vertex_induced(),
        atlas.FOUR_CYCLE.vertex_induced(),
        atlas.FOUR_PATH.vertex_induced(),
    ]

    def test_selection_matches_appendix(self):
        """The appendix's final alternative set: all six E variants."""
        result = select_alternative_patterns(
            self.QUERIES, _TableModel(self.COSTS), margin=1.0
        )
        expected = {
            normalize_item(atlas.FOUR_STAR, EDGE_INDUCED),
            normalize_item(atlas.FOUR_PATH, EDGE_INDUCED),
            normalize_item(atlas.FOUR_CYCLE, EDGE_INDUCED),
            normalize_item(atlas.TAILED_TRIANGLE, EDGE_INDUCED),
            normalize_item(atlas.CHORDAL_FOUR_CYCLE, EDGE_INDUCED),
            normalize_item(atlas.FOUR_CLIQUE, EDGE_INDUCED),
        }
        assert result.measured == expected
        assert all(result.morphed.values())

    def test_printed_conversion_arithmetic(self):
        """Figure 17e: countV(pc) = 7 - (9 - 6*1) - 3*1 = 1."""
        measured_values = {
            normalize_item(atlas.FOUR_CYCLE, EDGE_INDUCED): 7,
            normalize_item(atlas.CHORDAL_FOUR_CYCLE, EDGE_INDUCED): 9,
            normalize_item(atlas.FOUR_CLIQUE, EDGE_INDUCED): 1,
        }
        expr = solve_query(
            item_of(atlas.FOUR_CYCLE.vertex_induced()), set(measured_values)
        )
        assert evaluate(expr, measured_values) == 1

    def test_end_to_end_on_concrete_graph(self):
        graph = DataGraph(
            8,
            [
                (0, 1), (1, 2), (2, 3), (0, 3),      # 4-cycle
                (3, 4), (4, 5), (5, 6), (6, 4),      # triangle + tail
                (6, 7), (7, 0), (2, 5), (1, 4),
            ],
            name="a2",
        )
        session = MorphingSession(PeregrineEngine(), enabled=True)
        result = session.run(graph, self.QUERIES)
        for q in self.QUERIES:
            assert result.results[q] == brute_force_count(graph, q)
