"""Fault-injection matrix for the recovery layer (retry / deadline /
checkpoint / fallback).

The contract under test is differential and exact: a run that survives
injected faults must return results *byte-identical* to the fault-free
oracle — a retried shard's value does not depend on how many attempts it
took, a resumed run on a checkpoint matches the uninterrupted run, and a
deadline-degraded run never passes a partial aggregate off as an answer
(it returns a :class:`repro.PartialRunResult` with the partial values
clearly quarantined). The ``corrupt`` fault proves the matrix has teeth:
a silently wrong shard value *must* make these comparisons fail.

Most cases run the in-process sharded transport (fault-tolerance
activation forces sharding even at ``workers=1``); a dedicated set
exercises the real process pool with genuine ``os._exit`` worker crashes
and ``BrokenProcessPool`` recovery.
"""

from __future__ import annotations

import pickle

import pytest

import repro
from repro import (
    CheckpointError,
    CountAggregation,
    Deadline,
    ExistenceAggregation,
    FaultPlan,
    FaultSpec,
    GraphValidationError,
    MatchListAggregation,
    MNIAggregation,
    PartialRunResult,
    RetryPolicy,
    ShardCheckpoint,
    Tracer,
    WorkerCrashError,
)
from repro.core.atlas import FOUR_CYCLE, TAILED_TRIANGLE, TRIANGLE
from repro.engines.recovery import PatternReport, RunControl, checkpoint_key
from repro.errors import RunDeadlineExceeded
from repro.morph.session import MorphingSession
from repro.observe.progress import ProgressReporter
from repro.testing import InjectedWorkerCrash
from repro.testing.oracle import assert_matches_oracle, results_equal

ENGINES = ("peregrine", "autozero", "graphpi", "bigjoin", "sumpa")
AGGREGATIONS = (
    CountAggregation,
    ExistenceAggregation,
    MNIAggregation,
    MatchListAggregation,
)

#: Retries without wall-clock cost: backoff computed but never slept.
NOSLEEP = RetryPolicy(max_retries=3, backoff_seconds=0.0, sleep=lambda _s: None)


# -- policy / deadline / plan units -------------------------------------------


class TestRetryPolicy:
    def test_resolve_none_gives_defaults(self):
        assert RetryPolicy.resolve(None).max_retries == RetryPolicy().max_retries

    def test_resolve_int_sets_budget(self):
        assert RetryPolicy.resolve(5).max_retries == 5

    def test_resolve_instance_passthrough(self):
        assert RetryPolicy.resolve(NOSLEEP) is NOSLEEP

    def test_resolve_rejects_bool_and_junk(self):
        with pytest.raises(TypeError):
            RetryPolicy.resolve(True)
        with pytest.raises(TypeError):
            RetryPolicy.resolve("twice")

    def test_delay_is_deterministic_and_grows(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_factor=2.0, jitter=0.25)
        first = policy.delay(3, 1)
        assert first == policy.delay(3, 1), "jitter must be seeded"
        assert policy.delay(4, 1) != first, "jitter must vary per shard"
        assert 0.1 <= first <= 0.1 * 1.25
        assert 0.2 <= policy.delay(3, 2) <= 0.2 * 1.25


class TestDeadline:
    def test_expires_on_fake_clock(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(5.0)
        now[0] = 6.0
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(-1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_resolve(self):
        assert Deadline.resolve(None) is None
        d = Deadline(1.0)
        assert Deadline.resolve(d) is d
        assert Deadline.resolve(2, clock=lambda: 0.0).seconds == 2.0


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("melt")

    def test_times_scopes_attempts(self):
        plan = FaultPlan({1: FaultSpec("crash", times=2)})
        assert plan.spec_for(1, 0) is not None
        assert plan.spec_for(1, 1) is not None
        assert plan.spec_for(1, 2) is None
        assert plan.spec_for(0, 0) is None

    def test_poisoned_shard_never_clears(self):
        plan = FaultPlan({0: FaultSpec("crash", times=None)})
        assert plan.spec_for(0, 10_000) is not None

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(32, seed=7)
        b = FaultPlan.random(32, seed=7)
        assert {i: s for i, s in a.specs.items()} == b.specs
        assert FaultPlan.random(32, seed=8).specs != a.specs

    def test_crash_in_process_raises(self):
        plan = FaultPlan.crashes([2])
        with pytest.raises(InjectedWorkerCrash):
            plan.apply_before_shard(2, 0, in_worker=False)

    def test_hang_requires_stop_signal(self):
        plan = FaultPlan({0: FaultSpec("hang")})
        with pytest.raises(ValueError, match="stop signal"):
            plan.apply_before_shard(0, 0, in_worker=False, stop_check=None)

    def test_hang_releases_on_stop(self):
        plan = FaultPlan({0: FaultSpec("hang")})
        polls = []
        aborted = plan.apply_before_shard(
            0,
            0,
            in_worker=False,
            stop_check=lambda: len(polls) >= 3,
            sleep=lambda _s: polls.append(1),
        )
        assert aborted is True
        assert len(polls) == 3

    def test_slow_sleeps_then_proceeds(self):
        plan = FaultPlan({0: FaultSpec("slow", seconds=1.5)})
        slept = []
        aborted = plan.apply_before_shard(
            0, 0, in_worker=False, sleep=slept.append
        )
        assert aborted is False
        assert slept == [1.5]

    def test_transform_value_variants(self):
        plan = FaultPlan({0: FaultSpec("corrupt", times=None, delta=3)})
        assert plan.transform_value(0, 0, 10) == 13
        assert plan.transform_value(0, 0, True) is False
        assert plan.transform_value(0, 0, [1, 2]) == [1]
        assert plan.transform_value(1, 0, 10) == 10  # other shards untouched

    def test_plan_is_picklable(self):
        plan = FaultPlan.crashes([0, 2], times=2)
        assert pickle.loads(pickle.dumps(plan)).specs == plan.specs


# -- the differential matrix: crash + retry == oracle -------------------------


class TestCrashRetryMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("agg_cls", AGGREGATIONS)
    def test_crashes_on_two_shards_match_oracle(
        self, small_graph, engine, agg_cls
    ):
        """Crashes on ≤2 shards, retried, must be byte-identical to the
        fault-free oracle — every engine, every aggregation."""
        assert_matches_oracle(
            small_graph,
            TRIANGLE,
            engine,
            agg_cls,
            faults=FaultPlan.crashes([0, 2]),
            retry=NOSLEEP,
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_multi_query_morphed_run_survives_crashes(self, small_graph, engine):
        queries = [TRIANGLE, TAILED_TRIANGLE.vertex_induced(), FOUR_CYCLE]
        assert_matches_oracle(
            small_graph,
            queries,
            engine,
            faults=FaultPlan.crashes([1, 3], times=2),
            retry=NOSLEEP,
        )

    def test_seeded_random_plan_converges(self, small_graph):
        """Property-style: a seed-derived crash/slow plan still matches."""
        plan = FaultPlan.random(8, seed=11, p_fault=0.5, kinds=("crash",))
        assert_matches_oracle(
            small_graph,
            [TRIANGLE, FOUR_CYCLE],
            "peregrine",
            faults=plan,
            retry=NOSLEEP,
        )

    def test_retry_emits_spans_and_progress_events(self, small_graph):
        tracer = Tracer()
        reporter = ProgressReporter(stream=None)
        result = repro.run(
            small_graph,
            [TRIANGLE],
            faults=FaultPlan.crashes([0]),
            retry=NOSLEEP,
            trace=tracer,
            progress=reporter,
        )
        retries = result.trace.find("shard.retry")
        assert retries, "a retried shard must be visible in the trace"
        span = retries[0]
        assert span.attributes["shard"] == 0
        assert span.attributes["attempt"] == 1
        assert span.attributes["error"] == "InjectedWorkerCrash"
        assert span.attributes["backoff_seconds"] >= 0.0
        assert ("retry", "shard 0 attempt 1 after InjectedWorkerCrash") in (
            reporter.events
        )

    def test_poisoned_shard_exhausts_budget(self, small_graph):
        with pytest.raises(WorkerCrashError) as info:
            repro.run(
                small_graph,
                [TRIANGLE],
                faults=FaultPlan({1: FaultSpec("crash", times=None)}),
                retry=RetryPolicy(max_retries=2, sleep=lambda _s: None),
            )
        assert info.value.shard_index == 1
        assert info.value.attempts == 3  # initial try + 2 retries
        assert isinstance(info.value.__cause__, InjectedWorkerCrash)

    def test_corrupt_fault_is_caught_by_the_differential(self, small_graph):
        """A silently wrong shard value must fail the oracle comparison —
        this is what gives the rest of the matrix its teeth."""
        oracle = repro.run(small_graph, [TRIANGLE], morph=False)
        corrupted = repro.run(
            small_graph,
            [TRIANGLE],
            morph=False,
            faults=FaultPlan({0: FaultSpec("corrupt", times=None, delta=1)}),
        )
        assert corrupted.results[TRIANGLE] == oracle.results[TRIANGLE] + 1
        assert not results_equal(corrupted.results, oracle.results)


# -- deadlines: degrade, never hang -------------------------------------------


class TestRunDeadline:
    def test_hang_degrades_to_partial_result(self, tiny_graph):
        result = repro.run(
            tiny_graph,
            [TRIANGLE],
            deadline_seconds=0.25,
            faults=FaultPlan({2: FaultSpec("hang", times=None)}),
            retry=NOSLEEP,
        )
        assert isinstance(result, PartialRunResult)
        assert not result.complete
        assert TRIANGLE in result.unresolved
        assert TRIANGLE not in result.results
        assert 0 < result.completed_shards < result.total_shards
        assert result.coverage == pytest.approx(
            result.completed_shards / result.total_shards
        )
        assert result.partial_items, "interrupted item must expose its partial"

    def test_streaming_raises_instead_of_degrading(self, tiny_graph):
        """Delivered matches cannot be un-delivered, so streaming raises."""
        session = MorphingSession(
            repro.PeregrineEngine(),
            deadline_seconds=0.25,
            faults=FaultPlan({1: FaultSpec("hang", times=None)}),
            retry=NOSLEEP,
        )
        seen: list = []
        with pytest.raises(RunDeadlineExceeded):
            session.run_streaming(
                tiny_graph, [TRIANGLE], lambda q, m: seen.append(m)
            )

    def test_generous_deadline_changes_nothing(self, small_graph):
        assert_matches_oracle(
            small_graph, [TRIANGLE, FOUR_CYCLE], deadline_seconds=600.0
        )


# -- checkpoint / resume ------------------------------------------------------


class TestCheckpointJournal:
    META = {
        "graph": "g",
        "num_vertices": 8,
        "num_edges": 12,
        "engine": "PeregrineEngine",
        "aggregation": "count",
    }

    def test_round_trip_across_reopen(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with ShardCheckpoint(path, meta=self.META) as ckpt:
            ckpt.put("k", (0, 4), 0, 17, {"calls": 3})
            ckpt.put("k", (4, 8), 1, [1, 2], {"calls": 5})
        with ShardCheckpoint(path, meta=self.META) as again:
            assert len(again) == 2
            assert again.get("k", (0, 4)) == (17, {"calls": 3})
            assert again.get("k", (4, 8)) == ([1, 2], {"calls": 5})
            assert again.get("other", (0, 4)) is None

    def test_put_is_idempotent(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with ShardCheckpoint(path, meta=self.META) as ckpt:
            ckpt.put("k", (0, 4), 0, 17, None)
            ckpt.put("k", (0, 4), 0, 999, None)  # ignored: already journaled
            assert ckpt.get("k", (0, 4)) == (17, None)
        assert sum(1 for _ in open(path)) == 2  # meta + one shard record

    def test_tampered_record_dropped_with_warning(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with ShardCheckpoint(path, meta=self.META) as ckpt:
            ckpt.put("k", (0, 4), 0, 17, None)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"sha256": "', '"sha256": "00')
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="corrupt or torn"):
            reopened = ShardCheckpoint(path, meta=self.META)
        assert reopened.get("k", (0, 4)) is None
        reopened.close()

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with ShardCheckpoint(path, meta=self.META) as ckpt:
            ckpt.put("k", (0, 4), 0, 17, None)
        with open(path, "a") as fh:
            fh.write('{"type": "shard", "key": "k", "lo": 4,')  # killed mid-write
        with pytest.warns(RuntimeWarning, match="corrupt or torn"):
            reopened = ShardCheckpoint(path, meta=self.META)
        assert reopened.get("k", (0, 4)) == (17, None)
        reopened.close()

    def test_meta_mismatch_refuses_to_mix_runs(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ShardCheckpoint(path, meta=self.META).close()
        with pytest.raises(CheckpointError, match="refusing to mix"):
            ShardCheckpoint(path, meta={**self.META, "engine": "SumPAEngine"})

    def test_format_version_checked(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text('{"type": "meta", "format_version": 99}\n')
        with pytest.raises(CheckpointError, match="format_version"):
            ShardCheckpoint(path, meta=self.META)

    def test_checkpoint_key_is_isomorphism_stable(self):
        relabeled = TRIANGLE.relabel([2, 0, 1])
        agg = CountAggregation()
        assert checkpoint_key(TRIANGLE, agg) == checkpoint_key(relabeled, agg)
        assert checkpoint_key(TRIANGLE, agg) != checkpoint_key(
            TRIANGLE, MNIAggregation()
        )


class TestResume:
    def test_interrupted_run_resumes_and_matches_oracle(
        self, small_graph, tmp_path
    ):
        path = tmp_path / "run.ckpt.jsonl"
        queries = [TRIANGLE, FOUR_CYCLE]
        oracle = repro.run(small_graph, queries)

        interrupted = repro.run(
            small_graph,
            queries,
            deadline_seconds=0.25,
            checkpoint=path,
            faults=FaultPlan({2: FaultSpec("hang", times=None)}),
            retry=NOSLEEP,
        )
        assert isinstance(interrupted, PartialRunResult)
        journal = ShardCheckpoint(path)
        journaled = len(journal)
        journal.close()
        assert journaled > 0, "completed shards must be on disk already"

        tracer = Tracer()
        resumed = repro.run(small_graph, queries, checkpoint=path, trace=tracer)
        assert not isinstance(resumed, PartialRunResult)
        assert results_equal(resumed.results, oracle.results)
        skipped = resumed.trace.find("shard.checkpoint")
        assert len(skipped) == journaled, (
            "every journaled shard must be skipped, visibly, on resume"
        )

    def test_resume_after_crashes_skips_completed_shards(
        self, small_graph, tmp_path
    ):
        """A run killed by a poisoned shard still journals the shards that
        finished before it; the rerun only recomputes the rest."""
        path = tmp_path / "run.ckpt.jsonl"
        with pytest.raises(WorkerCrashError):
            repro.run(
                small_graph,
                [TRIANGLE],
                checkpoint=path,
                faults=FaultPlan({3: FaultSpec("crash", times=None)}),
                retry=RetryPolicy(max_retries=1, sleep=lambda _s: None),
            )
        journal = ShardCheckpoint(path)
        assert len(journal) > 0
        journal.close()
        oracle = repro.run(small_graph, [TRIANGLE])
        tracer = Tracer()
        resumed = repro.run(small_graph, [TRIANGLE], checkpoint=path, trace=tracer)
        assert results_equal(resumed.results, oracle.results)
        assert resumed.trace.find("shard.checkpoint")

    def test_checkpoint_run_equals_plain_run(self, small_graph, tmp_path):
        assert_matches_oracle(
            small_graph, TRIANGLE, checkpoint=tmp_path / "fresh.jsonl"
        )


# -- the real process pool ----------------------------------------------------


class TestProcessPoolRecovery:
    def test_worker_os_exit_is_retried(self, small_graph):
        """An os._exit(13) in a pool worker breaks the pool; the recovery
        layer rebuilds it and the retried run matches the oracle."""
        survived, _oracle = assert_matches_oracle(
            small_graph,
            TRIANGLE,
            workers=2,
            faults=FaultPlan.crashes([1]),
            retry=NOSLEEP,
            tracer=Tracer(),
        )
        assert survived.trace.find("shard.retry")

    def test_pool_poisoning_shard_recovered_in_process(self, small_graph):
        """A shard that keeps killing workers is recovered in the parent
        once its pool budget is spent — the run still completes."""
        survived, _oracle = assert_matches_oracle(
            small_graph,
            TRIANGLE,
            workers=2,
            # Crashes attempts 0 and 1; the in-process fallback runs at
            # attempt 2 and goes through clean.
            faults=FaultPlan({1: FaultSpec("crash", times=2)}),
            retry=RetryPolicy(max_retries=1, sleep=lambda _s: None),
            tracer=Tracer(),
        )
        fallbacks = survived.trace.find("shard.fallback")
        assert fallbacks and fallbacks[0].attributes["shard"] == 1


# -- graph input validation (io.py satellite) ---------------------------------


class TestGraphValidation:
    def test_edge_list_context(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n# fine\n7\n")
        from repro.graph.io import load_edge_list

        with pytest.raises(GraphValidationError, match=r"bad\.txt:3"):
            load_edge_list(path)

    @pytest.mark.parametrize(
        "text,match",
        [
            ("0 x\n", "non-integer endpoint"),
            ("0 -3\n", "negative vertex id"),
            (f"0 {2**31}\n", "overflows int32"),
        ],
    )
    def test_edge_list_bad_tokens(self, tmp_path, text, match):
        from repro.graph.io import load_edge_list

        path = tmp_path / "bad.txt"
        path.write_text(text)
        with pytest.raises(GraphValidationError, match=match):
            load_edge_list(path)

    def test_validation_error_is_a_value_error(self, tmp_path):
        """Existing except ValueError call sites keep working."""
        from repro.graph.io import load_edge_list

        path = tmp_path / "bad.txt"
        path.write_text("oops\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_metis_errors_carry_line_numbers(self, tmp_path):
        from repro.graph.io import load_metis

        path = tmp_path / "bad.metis"
        path.write_text("% comment\n2 1\n5\n1\n")
        with pytest.raises(GraphValidationError, match=r"out of range.*metis:3"):
            load_metis(path)

    def test_json_ragged_edge_rejected(self, tmp_path):
        import json

        from repro.graph.io import load_json_graph

        path = tmp_path / "g.json"
        path.write_text(json.dumps({"num_vertices": 3, "edges": [[0, 1, 2]]}))
        with pytest.raises(GraphValidationError, match="ragged edge"):
            load_json_graph(path)

    def test_json_label_length_checked(self, tmp_path):
        import json

        from repro.graph.io import load_json_graph

        path = tmp_path / "g.json"
        path.write_text(
            json.dumps({"num_vertices": 2, "edges": [[0, 1]], "labels": [1]})
        )
        with pytest.raises(GraphValidationError, match="label array length"):
            load_json_graph(path)

    def test_from_edges_rejects_negative(self):
        from repro.graph.io import from_edges

        with pytest.raises(GraphValidationError):
            from_edges([(0, -1)])


# -- RunControl bookkeeping ---------------------------------------------------


class TestRunControl:
    def test_coverage_charges_unstarted_items(self):
        control = RunControl()
        report = PatternReport(
            total_shards=4, completed_shards=3, interrupted=True
        )
        control.reports.append(report)
        # One more item never started: charged a full pattern's shards.
        assert control.charged_total(1) == 8
        assert control.coverage(1) == pytest.approx(3 / 8)
        assert control.interrupted

    def test_empty_run_has_full_coverage(self):
        assert RunControl().coverage() == 1.0

    def test_events_forward_to_progress(self):
        reporter = ProgressReporter(stream=None)
        control = RunControl(progress=reporter)
        control.event("retry", "shard 0")
        assert reporter.events == [("retry", "shard 0")]
