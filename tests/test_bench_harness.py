"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ComparisonRow,
    FigureReport,
    breakdown_row,
    compare_workload,
    timed,
)
from repro.core.atlas import TRIANGLE, motif_patterns
from repro.engines.base import EngineStats
from repro.engines.peregrine.engine import PeregrineEngine


class TestCompareWorkload:
    def test_basic_comparison(self, small_graph):
        row = compare_workload(
            PeregrineEngine, small_graph, list(motif_patterns(3)), workload="3-MC"
        )
        assert row.results_equal
        assert row.workload == "3-MC"
        assert row.graph == small_graph.name
        assert row.baseline_seconds > 0 and row.morphed_seconds > 0
        assert row.speedup == pytest.approx(
            row.baseline_seconds / row.morphed_seconds
        )

    def test_csv_shape(self, small_graph):
        row = compare_workload(
            PeregrineEngine, small_graph, [TRIANGLE], workload="tri"
        )
        fields = row.csv().split(",")
        assert fields[0] == "tri"
        assert len(fields) == 14
        assert fields[5] == "1"  # serial by default
        assert int(fields[6]) > 0  # peak RSS of a live process is nonzero
        # Per-run RSS delta columns are non-negative integers.
        assert int(fields[7]) >= 0 and int(fields[8]) >= 0
        # Per-stage columns reconcile with the row's phase fields.
        assert float(fields[10]) == pytest.approx(row.match_seconds, abs=1e-4)
        assert fields[-1] == row.dominant_stage

    def test_workers_recorded(self, small_graph):
        row = compare_workload(
            PeregrineEngine,
            small_graph,
            [TRIANGLE],
            workload="tri",
            workers=4,
        )
        assert row.workers == 4
        assert row.csv().split(",")[5] == "4"
        assert row.results_equal

    def test_trace_attached(self, small_graph):
        row = compare_workload(
            PeregrineEngine,
            small_graph,
            list(motif_patterns(3)),
            workload="3-MC",
            trace=True,
        )
        assert row.morphed_trace is not None
        row.morphed_trace.validate_nesting()
        stages = row.morphed_trace.stage_seconds()
        assert stages.get("match", 0.0) == pytest.approx(row.match_seconds)
        # Traced and untraced comparisons agree on results either way.
        assert row.results_equal

    def test_untraced_row_has_no_trace(self, small_graph):
        row = compare_workload(
            PeregrineEngine, small_graph, [TRIANGLE], workload="tri"
        )
        assert row.morphed_trace is None
        assert row.dominant_stage in ("transform", "match", "convert", "executor")

    def test_peak_rss_recorded(self, small_graph):
        row = compare_workload(
            PeregrineEngine, small_graph, [TRIANGLE], workload="tri"
        )
        # ru_maxrss high-water mark: at least the interpreter's footprint.
        assert row.peak_rss_kib > 1024
        # Per-run deltas: ru_maxrss is monotonic, so each run can only
        # raise the mark (or leave it); their sum never exceeds it.
        assert row.baseline_rss_delta_kib >= 0
        assert row.morphed_rss_delta_kib >= 0
        assert (
            row.baseline_rss_delta_kib + row.morphed_rss_delta_kib
            <= row.peak_rss_kib
        )


class TestFigureReport:
    def _dummy_row(self, speedup: float) -> ComparisonRow:
        return ComparisonRow(
            workload="w",
            graph="g",
            baseline_seconds=speedup,
            morphed_seconds=1.0,
            baseline_stats=EngineStats(),
            morphed_stats=EngineStats(),
            results_equal=True,
            morphed_patterns=1,
        )

    def test_geomean(self):
        report = FigureReport("F", "desc")
        report.add(self._dummy_row(2.0))
        report.add(self._dummy_row(8.0))
        assert report.geometric_mean_speedup == pytest.approx(4.0)
        assert report.max_speedup == pytest.approx(8.0)

    def test_render_contains_rows(self):
        report = FigureReport("Figure X", "demo")
        report.add(self._dummy_row(3.0))
        text = report.render()
        assert "Figure X" in text
        assert "w,g" in text

    def test_extra_columns(self):
        report = FigureReport("F", "d")
        report.extra_columns["const"] = lambda r: 7
        report.add(self._dummy_row(1.0))
        assert report.render().splitlines()[-1].endswith(",7")

    def test_empty_report(self):
        report = FigureReport("F", "d")
        assert report.geometric_mean_speedup == 1.0
        assert report.max_speedup == 1.0


class TestHelpers:
    def test_timed(self):
        value, seconds = timed(lambda: 42)
        assert value == 42
        assert seconds >= 0.0

    def test_breakdown_row_percentages(self, small_graph):
        engine = PeregrineEngine()
        engine.count(small_graph, TRIANGLE)
        row = breakdown_row("x", engine.stats)
        assert row.label == "x"
        total_pct = row.setops + row.udf + row.filter + row.other
        assert total_pct == pytest.approx(100.0, abs=1.0)

    def test_breakdown_row_zero_total(self):
        row = breakdown_row("empty", EngineStats())
        assert row.total == 0.0

    def test_breakdown_row_as_dict(self, small_graph):
        """The mapping view feeds breakdown_chart and extra_info."""
        engine = PeregrineEngine()
        engine.count(small_graph, TRIANGLE)
        row = breakdown_row("x", engine.stats)
        mapping = row.as_dict()
        assert mapping["label"] == "x"
        assert set(mapping) == {
            "label", "setops", "udf", "filter", "other", "total"
        }
        from repro.bench.reporting import breakdown_chart

        chart = breakdown_chart([(row.label, mapping)])
        assert "x" in chart


class TestReductionMetrics:
    def test_branch_reduction_infinite_like(self):
        baseline = EngineStats()
        baseline.predictor.branches = 100
        baseline.predictor.misses = 50
        row = ComparisonRow(
            workload="w", graph="g",
            baseline_seconds=1.0, morphed_seconds=1.0,
            baseline_stats=baseline, morphed_stats=EngineStats(),
            results_equal=True, morphed_patterns=1,
        )
        assert row.branch_reduction == 50.0

    def test_setop_reduction(self, small_graph):
        row = compare_workload(
            PeregrineEngine, small_graph, list(motif_patterns(4)), workload="4-MC"
        )
        assert row.setop_reduction > 1.0
