"""Tests for the CLI front-end and the clique-finding application."""

from __future__ import annotations

import pytest

from repro.apps.clique_finding import clique_census, count_cliques, max_clique_size
from repro.cli import main, resolve_pattern
from repro.core.atlas import TAILED_TRIANGLE
from repro.core.pattern import Pattern
from repro.graph.datagraph import DataGraph

from .oracle import brute_force_count


class TestCliqueFinding:
    @pytest.fixture(scope="class")
    def graph(self):
        # A K5 glued to a K3 plus some noise edges.
        edges = [
            (0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4),
            (2, 3), (2, 4), (3, 4),
            (5, 6), (6, 7), (5, 7),
            (4, 5), (7, 8), (8, 9),
        ]
        return DataGraph(10, edges, name="cliquey")

    def test_count_cliques(self, graph):
        assert count_cliques(graph, 3) == brute_force_count(graph, Pattern.clique(3))
        assert count_cliques(graph, 5) == 1

    def test_census_stops_at_empty(self, graph):
        census = clique_census(graph, 8)
        assert census[5] == 1
        assert census[6] == 0
        assert 7 not in census  # stopped after the first empty size

    def test_max_clique(self, graph):
        assert max_clique_size(graph) == 5

    def test_max_clique_trivial(self):
        lonely = DataGraph(3, [(0, 1)], name="lonely")
        assert max_clique_size(lonely) == 2

    def test_size_validation(self, graph):
        with pytest.raises(ValueError):
            count_cliques(graph, 1)


class TestPatternResolution:
    def test_named(self):
        assert resolve_pattern("TT") == TAILED_TRIANGLE

    def test_vertex_variant(self):
        assert resolve_pattern("C4-V").is_vertex_induced

    def test_edge_suffix(self):
        assert resolve_pattern("C4-E").is_edge_induced

    def test_unknown_pattern(self):
        with pytest.raises(SystemExit):
            resolve_pattern("nope")

    def test_unknown_suffix(self):
        with pytest.raises(SystemExit):
            resolve_pattern("TT-X")


class TestCliCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "MI" in out and "friendster" in out

    def test_equation(self, capsys):
        assert main(["equation", "TT"]) == 0
        assert "TT^E" in capsys.readouterr().out

    def test_count_on_file(self, capsys, tmp_path, small_graph):
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.edges"
        save_edge_list(small_graph, path)
        assert main(
            ["count", "--graph-file", str(path), "--pattern", "triangle"]
        ) == 0
        out = capsys.readouterr().out
        expected = brute_force_count(small_graph, Pattern.clique(3))
        assert str(expected) in out

    def test_dirty_file_warns_once(self, capsys, tmp_path):
        path = tmp_path / "dirty.edges"
        path.write_text("0 1\n1 0\n2 2\n1 2\n")
        assert main(
            ["count", "--graph-file", str(path), "--pattern", "triangle"]
        ) == 0
        err = capsys.readouterr().err
        assert "dropped 1 self-loops and 1 duplicate edges" in err

    def test_clean_file_stays_quiet(self, capsys, tmp_path, small_graph):
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.edges"
        save_edge_list(small_graph, path)
        assert main(
            ["count", "--graph-file", str(path), "--pattern", "triangle"]
        ) == 0
        assert "dropped" not in capsys.readouterr().err

    def test_count_baseline_flag(self, capsys, tmp_path, small_graph):
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.edges"
        save_edge_list(small_graph, path)
        assert main(
            [
                "count", "--graph-file", str(path),
                "--pattern", "C4-V", "--no-morph", "--engine", "bigjoin",
            ]
        ) == 0
        out = capsys.readouterr().out
        from repro.core.atlas import FOUR_CYCLE

        assert str(brute_force_count(small_graph, FOUR_CYCLE.vertex_induced())) in out

    def test_cliques_on_file(self, capsys, tmp_path, small_graph):
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.edges"
        save_edge_list(small_graph, path)
        assert main(
            ["cliques", "--graph-file", str(path), "--max-size", "4"]
        ) == 0
        assert "3-clique" in capsys.readouterr().out

    def test_fsm_requires_labels(self, tmp_path, small_graph):
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.edges"
        save_edge_list(small_graph, path)
        with pytest.raises(SystemExit):
            main(["fsm", "--graph-file", str(path), "--support", "3"])

    def test_fsm_on_labeled_file(self, capsys, tmp_path, small_labeled_graph):
        from repro.graph.io import save_edge_list

        epath = tmp_path / "g.edges"
        lpath = tmp_path / "g.labels"
        save_edge_list(small_labeled_graph, epath, lpath)
        assert main(
            [
                "fsm", "--graph-file", str(epath), "--label-file", str(lpath),
                "--support", "4", "--max-edges", "2",
            ]
        ) == 0
        assert "frequent patterns" in capsys.readouterr().out


class TestNewCliCommands:
    def test_orbits_command(self, capsys, tmp_path, small_graph):
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.edges"
        save_edge_list(small_graph, path)
        assert main(
            ["orbits", "--graph-file", str(path), "--vertex", "0", "--size", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "triangle" in out

    def test_approx_command(self, capsys, tmp_path, small_graph):
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.edges"
        save_edge_list(small_graph, path)
        assert main(
            [
                "approx", "--graph-file", str(path),
                "--pattern", "triangle", "--prob", "0.8", "--trials", "3",
            ]
        ) == 0
        assert "estimate" in capsys.readouterr().out

    def test_dsl_pattern_via_cli(self, capsys, tmp_path, small_graph):
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.edges"
        save_edge_list(small_graph, path)
        assert main(
            ["count", "--graph-file", str(path), "--pattern", "a-b,b-c,c-a"]
        ) == 0
        from repro.core.pattern import Pattern

        from .oracle import brute_force_count

        expected = brute_force_count(small_graph, Pattern.clique(3))
        assert str(expected) in capsys.readouterr().out
