"""Differential tests for the shard-parallel execution layer.

The layer's contract is exact: ``run(workers=1)`` and ``run(workers=N)``
return *identical* values — counts, MNI tables, existence booleans, and
match lists byte-for-byte in the same order — for every engine, every
aggregation, and both the morphed and baseline session paths. The
property tests here pin that contract against random graphs, with the
brute-force oracle as an independent third opinion on counts.

Most differential cases use ``executor="serial"`` (in-process sharding:
the same split/merge machinery without process-pool overhead); a small
set of dedicated tests exercises the real ``ProcessShardExecutor``.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings

import repro.engines.base as base
from repro.core.aggregation import (
    CountAggregation,
    ExistenceAggregation,
    MatchListAggregation,
    MNIAggregation,
)
from repro.core.atlas import FOUR_CYCLE, TAILED_TRIANGLE, TRIANGLE
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.base import EngineStats
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.execution import (
    CancelFlag,
    ProcessShardExecutor,
    SerialShardExecutor,
    default_shard_count,
    make_executor,
)
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.sumpa.engine import SumPAEngine
from repro.graph.datagraph import DataGraph
from repro.graph.partition import shard_by_degree_prefix
from repro.morph.session import MorphingSession
from repro.testing.oracle import assert_matches_oracle

from .oracle import brute_force_count
from .strategies import data_graphs, shard_counts

ENGINES = [
    PeregrineEngine,
    AutoZeroEngine,
    GraphPiEngine,
    BigJoinEngine,
    SumPAEngine,
]

AGGREGATIONS = [
    CountAggregation,
    MNIAggregation,
    MatchListAggregation,
    ExistenceAggregation,
]

#: Query mix: plain, anti-edge (vertex-induced), and cyclic patterns.
QUERIES = [TRIANGLE, TAILED_TRIANGLE.vertex_induced(), FOUR_CYCLE]


# -- sharding ---------------------------------------------------------------


class TestShardByDegreePrefix:
    @given(data_graphs(min_n=1, max_n=20), shard_counts())
    @settings(max_examples=30, deadline=None)
    def test_windows_partition_vertex_range(self, graph, num_shards):
        shards = shard_by_degree_prefix(graph, num_shards)
        assert 1 <= len(shards) <= num_shards
        assert shards[0][0] == 0
        assert shards[-1][1] == graph.num_vertices
        for (_, hi), (lo, _) in zip(shards, shards[1:]):
            assert hi == lo  # contiguous, half-open, ascending
        for lo, hi in shards:
            assert lo < hi  # no empty shards

    @given(data_graphs(min_n=2, max_n=12), shard_counts())
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, graph, num_shards):
        assert shard_by_degree_prefix(graph, num_shards) == shard_by_degree_prefix(
            graph, num_shards
        )

    def test_more_shards_than_vertices(self):
        graph = DataGraph(3, [(0, 1), (1, 2)], name="tri-path")
        shards = shard_by_degree_prefix(graph, 10)
        assert shards == [(0, 1), (1, 2), (2, 3)]

    def test_single_shard_is_whole_range(self, small_graph):
        assert shard_by_degree_prefix(small_graph, 1) == [
            (0, small_graph.num_vertices)
        ]

    def test_degree_balancing_splits_heavy_prefix(self):
        # A star: vertex 0 carries all the degree, so the first shard
        # should be narrow and the tail shards wide.
        n = 16
        graph = DataGraph(n, [(0, v) for v in range(1, n)], name="star")
        shards = shard_by_degree_prefix(graph, 4)
        widths = [hi - lo for lo, hi in shards]
        assert widths[0] < widths[-1]


# -- engine-level differential matrix ---------------------------------------


@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("aggregation_cls", AGGREGATIONS)
class TestEngineParallelDifferential:
    """``engine.run`` parallel == serial for every engine × aggregation."""

    @given(data_graphs(min_n=4, max_n=10), shard_counts())
    @settings(max_examples=6, deadline=None)
    def test_sharded_equals_serial(
        self, engine_cls, aggregation_cls, graph, num_shards
    ):
        for pattern in QUERIES:
            serial_engine = engine_cls()
            serial = serial_engine.run(graph, pattern, aggregation_cls())
            sharded_engine = engine_cls()
            sharded = sharded_engine.run(
                graph,
                pattern,
                aggregation_cls(),
                workers=4,
                num_shards=num_shards,
                executor="serial",
            )
            assert sharded == serial
            if aggregation_cls is CountAggregation:
                assert serial == brute_force_count(graph, pattern)
            if aggregation_cls is MatchListAggregation:
                # Byte-identical, not just set-equal: shard-order merge
                # must reproduce the serial enumeration order.
                assert pickle.dumps(sharded) == pickle.dumps(serial)
            if aggregation_cls is not ExistenceAggregation:
                # Existence cancels mid-run, legitimately skipping work;
                # every other aggregation must do identical work.
                assert (
                    sharded_engine.stats.matches == serial_engine.stats.matches
                )


# -- session-level differential (morphed and baseline paths) ----------------


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestSessionParallelDifferential:
    @given(data_graphs(min_n=4, max_n=10), shard_counts())
    @settings(max_examples=5, deadline=None)
    def test_counts_match_serial_and_oracle(self, engine_cls, graph, num_shards):
        for enabled in (False, True):
            _parallel, serial = assert_matches_oracle(
                graph,
                QUERIES,
                engine_cls,
                oracle_kwargs={"enabled": enabled},
                enabled=enabled,
                workers=4,
                executor="serial",
            )
            for pattern in QUERIES:
                assert serial.results[pattern] == brute_force_count(graph, pattern)

    @given(data_graphs(min_n=4, max_n=10))
    @settings(max_examples=4, deadline=None)
    def test_mni_matches_serial(self, engine_cls, graph):
        for enabled in (False, True):
            assert_matches_oracle(
                graph,
                QUERIES,
                engine_cls,
                MNIAggregation,
                oracle_kwargs={"enabled": enabled},
                enabled=enabled,
                workers=4,
                executor="serial",
            )


class TestStreamingParallel:
    def test_streaming_order_matches_serial(self, small_graph):
        def run(workers):
            seen = []
            session = MorphingSession(
                PeregrineEngine(),
                workers=workers,
                executor="serial" if workers > 1 else None,
            )
            session.run_streaming(
                small_graph,
                QUERIES,
                lambda pattern, match: seen.append((pattern, match)),
            )
            return seen

        assert run(4) == run(1)


# -- the real process pool --------------------------------------------------


@pytest.mark.parametrize("engine_cls", [PeregrineEngine, GraphPiEngine])
def test_process_pool_equals_serial(engine_cls, small_graph):
    for pattern in QUERIES:
        serial = engine_cls().run(small_graph, pattern)
        parallel = engine_cls().run(small_graph, pattern, workers=2)
        assert parallel == serial


def test_process_pool_reused_across_patterns(small_graph):
    engine = PeregrineEngine()
    with ProcessShardExecutor(2) as executor:
        for pattern in QUERIES:
            got = engine.run(small_graph, pattern, executor=executor)
            assert got == engine_count_reference(small_graph, pattern)


def engine_count_reference(graph, pattern):
    return PeregrineEngine().count(graph, pattern)


def test_determinism_process_matchlist(small_graph):
    """Two identical workers=4 runs are byte-identical, and == serial."""

    def run_once():
        return PeregrineEngine().run(
            small_graph, TRIANGLE, MatchListAggregation(), workers=4
        )

    first, second = run_once(), run_once()
    serial = PeregrineEngine().run(small_graph, TRIANGLE, MatchListAggregation())
    assert pickle.dumps(first) == pickle.dumps(second)
    assert pickle.dumps(first) == pickle.dumps(serial)


# -- early termination across shards ----------------------------------------


class TestEarlyTermination:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_existence_parallel_correct_and_stats_consistent(
        self, engine_cls, small_graph
    ):
        engine = engine_cls()
        found = engine.run(
            small_graph, TRIANGLE, ExistenceAggregation(), workers=4,
            executor="serial",
        )
        assert found is True
        engine.stats.validate()
        assert engine.stats.other_seconds >= 0.0

    def test_existence_parallel_negative(self):
        # A path has no triangles: every shard runs to completion.
        graph = DataGraph(12, [(v, v + 1) for v in range(11)], name="path")
        engine = PeregrineEngine()
        found = engine.run(
            graph, TRIANGLE, ExistenceAggregation(), workers=4, executor="serial"
        )
        assert found is False
        engine.stats.validate()

    def test_existence_process_pool(self, small_graph):
        found = PeregrineEngine().run(
            small_graph, TRIANGLE, ExistenceAggregation(), workers=2
        )
        assert found is True

    def test_cancel_flag_skips_remaining_shards(self, small_graph):
        """Once a shard saturates, unstarted shards return the zero."""
        executor = SerialShardExecutor(4)
        engine = PeregrineEngine()
        shards = shard_by_degree_prefix(small_graph, 8)
        results = executor.map_shards(
            engine, small_graph, TRIANGLE, ExistenceAggregation(), shards
        )
        assert len(results) == len(shards)
        values = [value for value, _stats in results]
        assert any(values)
        # Everything after the saturating shard was skipped entirely.
        saturated = values.index(True)
        assert all(v is False for v in values[saturated + 1 :])
        skipped_stats = [stats for _value, stats in results[saturated + 1 :]]
        assert all(s.total_seconds == 0.0 for s in skipped_stats)

    def test_cancel_flag_api(self):
        flag = CancelFlag()
        assert not flag.is_set()
        flag.set()
        assert flag.is_set()


# -- stats merging ----------------------------------------------------------


class TestEngineStatsMerge:
    def _busy_stats(self) -> EngineStats:
        stats = EngineStats()
        stats.matches = 7
        stats.materialized = 21
        stats.udf_calls = 3
        stats.udf_seconds = 0.25
        stats.filter_calls = 2
        stats.filter_seconds = 0.125
        stats.setops.intersections = 5
        stats.setops.seconds = 0.5
        stats.predictor.branches = 40
        stats.predictor.misses = 4
        stats.total_seconds = 1.5
        stats.patterns_matched = 1
        return stats

    def test_merge_identity(self):
        """zero.merge(x) reproduces x exactly (the shard-merge base case)."""
        target = EngineStats()
        source = self._busy_stats()
        target.merge(source)
        assert target.matches == source.matches
        assert target.materialized == source.materialized
        assert target.udf_calls == source.udf_calls
        assert target.udf_seconds == source.udf_seconds
        assert target.filter_calls == source.filter_calls
        assert target.filter_seconds == source.filter_seconds
        assert target.setops.intersections == source.setops.intersections
        assert target.setops.seconds == source.setops.seconds
        assert target.predictor.branches == source.predictor.branches
        assert target.predictor.misses == source.predictor.misses
        assert target.total_seconds == source.total_seconds
        assert target.patterns_matched == source.patterns_matched
        assert target.other_seconds == source.other_seconds

    def test_merge_adds(self):
        a, b = self._busy_stats(), self._busy_stats()
        a.merge(b)
        assert a.matches == 14
        assert a.total_seconds == pytest.approx(3.0)
        assert a.section_seconds == pytest.approx(1.75)

    def test_other_seconds_clamps_negative_residual(self):
        stats = EngineStats()
        stats.total_seconds = 0.1
        stats.udf_seconds = 0.5  # sections exceed wall time: a timer bug
        assert stats.other_seconds == 0.0

    def test_validate_rejects_overcounted_sections(self):
        stats = EngineStats()
        stats.total_seconds = 0.1
        stats.udf_seconds = 0.5
        with pytest.raises(AssertionError, match="exceed total wall time"):
            stats.validate()

    def test_validate_allows_timer_noise(self):
        stats = EngineStats()
        stats.total_seconds = 1.0
        stats.udf_seconds = 1.0 + 1e-9  # within _TIMER_SLACK
        stats.validate()

    def test_strict_mode_catches_bad_shard_stats(self, monkeypatch):
        monkeypatch.setattr(base, "STRICT_STATS", True)
        bad = EngineStats()
        bad.total_seconds = 0.1
        bad.udf_seconds = 0.5
        with pytest.raises(AssertionError):
            EngineStats().merge(bad)

    def test_non_strict_mode_clamps_silently(self, monkeypatch):
        monkeypatch.setattr(base, "STRICT_STATS", False)
        bad = EngineStats()
        bad.total_seconds = 0.1
        bad.udf_seconds = 0.5
        merged = EngineStats()
        merged.merge(bad)  # no raise
        assert merged.other_seconds == 0.0

    def test_explicit_strict_overrides_module_flag(self, monkeypatch):
        monkeypatch.setattr(base, "STRICT_STATS", False)
        bad = EngineStats()
        bad.total_seconds = 0.1
        bad.udf_seconds = 0.5
        with pytest.raises(AssertionError):
            EngineStats().merge(bad, strict=True)


# -- executor plumbing ------------------------------------------------------


class TestExecutorResolution:
    def test_serial_for_one_worker(self):
        assert isinstance(make_executor(1), SerialShardExecutor)

    def test_process_for_many_workers(self):
        executor = make_executor(4)
        assert isinstance(executor, ProcessShardExecutor)
        executor.close()

    def test_serial_spec(self):
        executor = make_executor(4, "serial")
        assert isinstance(executor, SerialShardExecutor)
        assert executor.workers == 4

    def test_instance_passthrough(self):
        instance = SerialShardExecutor(2)
        assert make_executor(8, instance) is instance

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor(2, "threads")

    def test_process_executor_needs_two_workers(self):
        with pytest.raises(ValueError):
            ProcessShardExecutor(1)

    def test_default_shard_count_oversubscribes(self, small_graph):
        assert default_shard_count(4, small_graph) == 16
        tiny = DataGraph(3, [(0, 1)], name="t")
        assert default_shard_count(4, tiny) == 3  # capped at |V|
        assert default_shard_count(1, small_graph) == 4


# -- fluent API / serial-default guarantees ---------------------------------


def test_engine_run_default_is_serial(small_graph):
    engine = PeregrineEngine()
    assert engine.run(small_graph, TRIANGLE) == engine_count_reference(
        small_graph, TRIANGLE
    )


def test_program_parallel_fluent(small_graph):
    from repro.apps.programs import PatternProgram

    serial = PatternProgram.on(small_graph).match(QUERIES).count()
    parallel = (
        PatternProgram.on(small_graph)
        .match(QUERIES)
        .parallel(4, executor="serial")
        .count()
    )
    assert parallel == serial
