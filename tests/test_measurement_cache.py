"""Tests for the cross-query measurement cache."""

from __future__ import annotations

from repro.core import atlas
from repro.core.aggregation import CountAggregation, MatchListAggregation, MNIAggregation
from repro.core.equations import item_of
from repro.engines.peregrine.engine import PeregrineEngine
from repro.morph.cache import MeasurementCache
from repro.morph.session import MorphingSession

from .oracle import brute_force_count


class TestCacheBasics:
    def test_put_get_roundtrip(self, small_graph):
        cache = MeasurementCache()
        agg = CountAggregation()
        item = item_of(atlas.FOUR_CYCLE)
        assert cache.get(small_graph, agg, item) is None
        cache.put(small_graph, agg, item, 42)
        assert cache.get(small_graph, agg, item) == 42
        assert cache.hits == 1 and cache.misses == 1

    def test_zero_counts_cacheable(self, small_graph):
        cache = MeasurementCache()
        agg = CountAggregation()
        item = item_of(atlas.FIVE_CLIQUE)
        cache.put(small_graph, agg, item, 0)
        assert cache.get(small_graph, agg, item) == 0

    def test_keys_separate_graphs(self, small_graph, tiny_graph):
        cache = MeasurementCache()
        agg = CountAggregation()
        item = item_of(atlas.TRIANGLE)
        cache.put(small_graph, agg, item, 7)
        assert cache.get(tiny_graph, agg, item) is None

    def test_keys_separate_aggregations(self, small_graph):
        cache = MeasurementCache()
        item = item_of(atlas.TRIANGLE)
        cache.put(small_graph, CountAggregation(), item, 7)
        assert cache.get(small_graph, MNIAggregation(), item) is None

    def test_match_lists_not_cached(self, small_graph):
        cache = MeasurementCache()
        agg = MatchListAggregation()
        item = item_of(atlas.TRIANGLE)
        cache.put(small_graph, agg, item, [(1, 2, 3)])
        assert cache.get(small_graph, agg, item) is None
        assert len(cache) == 0

    def test_clear(self, small_graph):
        cache = MeasurementCache()
        cache.put(small_graph, CountAggregation(), item_of(atlas.TRIANGLE), 1)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0


class TestCachedSessions:
    def test_second_run_hits_cache(self, small_graph):
        cache = MeasurementCache()
        queries = list(atlas.motif_patterns(4))
        session = MorphingSession(PeregrineEngine(), cache=cache, margin=1.0)
        first = session.run(small_graph, queries)
        engine_after_first = session.engine.stats.patterns_matched
        second = session.run(small_graph, queries)
        assert first.results == second.results
        assert cache.hits >= len(second.measured)
        # The second run matched nothing: every measurement came cached.
        assert session.engine.stats.patterns_matched == 0 or (
            session.engine.stats.patterns_matched < engine_after_first
        )

    def test_cached_results_still_exact(self, small_graph):
        cache = MeasurementCache()
        session = MorphingSession(PeregrineEngine(), cache=cache, margin=1e9)
        for _ in range(2):
            result = session.run(small_graph, [atlas.FOUR_CYCLE.vertex_induced()])
            assert result.results[
                atlas.FOUR_CYCLE.vertex_induced()
            ] == brute_force_count(small_graph, atlas.FOUR_CYCLE.vertex_induced())

    def test_overlapping_query_sets_share(self, small_graph):
        cache = MeasurementCache()
        session = MorphingSession(PeregrineEngine(), cache=cache, margin=1e9)
        session.run(small_graph, [atlas.FOUR_PATH.vertex_induced()])
        hits_before = cache.hits
        # 4-cycle's closure ⊆ 4-path's closure: everything should hit.
        session.run(small_graph, [atlas.FOUR_CYCLE.vertex_induced()])
        assert cache.hits > hits_before

    def test_mni_cached_across_fsm_style_runs(self, small_labeled_graph):
        from repro.core.pattern import Pattern

        cache = MeasurementCache()
        agg = MNIAggregation()
        session = MorphingSession(
            PeregrineEngine(), aggregation=agg, cache=cache, margin=1e9
        )
        q = Pattern(3, [(0, 1), (1, 2)], labels=[0, 0, 0])
        a = session.run(small_labeled_graph, [q])
        b = session.run(small_labeled_graph, [q])
        assert a.results == b.results
        assert cache.hits > 0
