"""Tests for the named-pattern atlas and motif enumeration."""

from __future__ import annotations

import pytest

from repro.core import atlas
from repro.core.canonical import are_isomorphic, canonical_form


class TestMotifEnumeration:
    @pytest.mark.parametrize(
        "k,expected", [(2, 1), (3, 2), (4, 6), (5, 21), (6, 112)]
    )
    def test_connected_pattern_counts(self, k, expected):
        """The motif-set sizes the paper quotes (2 size-3, 6 size-4)."""
        assert len(atlas.all_connected_patterns(k)) == expected

    def test_all_connected(self):
        assert all(p.is_connected for p in atlas.all_connected_patterns(5))

    def test_all_distinct(self):
        pats = atlas.all_connected_patterns(5)
        assert len({canonical_form(p) for p in pats}) == len(pats)

    def test_sorted_sparse_first(self):
        pats = atlas.all_connected_patterns(4)
        assert [p.num_edges for p in pats] == sorted(p.num_edges for p in pats)
        assert pats[0].num_edges == 3  # trees first
        assert pats[-1].is_clique

    def test_motif_patterns_are_vertex_induced(self):
        for p in atlas.motif_patterns(4):
            assert p.is_vertex_induced

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            atlas.all_connected_patterns(1)


class TestNamedPatterns:
    def test_figure1_shapes(self):
        assert atlas.TRIANGLE.is_clique and atlas.TRIANGLE.n == 3
        assert atlas.FOUR_STAR.degree(0) == 3
        assert atlas.TAILED_TRIANGLE.num_edges == 4
        assert atlas.FOUR_CYCLE.num_edges == 4
        assert atlas.CHORDAL_FOUR_CYCLE.num_edges == 5
        assert atlas.FOUR_CLIQUE.num_edges == 6

    def test_chordal_four_cycle_is_not_cycle_plus_anything_else(self):
        assert not are_isomorphic(atlas.CHORDAL_FOUR_CYCLE, atlas.TAILED_TRIANGLE)

    def test_evaluation_pattern_sizes(self):
        """Section 7: p1-p5 have 5 vertices, p6-p8 six, p9-p10 seven."""
        sizes = {name: p.n for name, p in atlas.EVALUATION_PATTERNS.items()}
        assert sizes == {
            "p1": 5, "p2": 5, "p3": 5, "p4": 5, "p5": 5,
            "p6": 6, "p7": 6, "p8": 6, "p9": 7, "p10": 7,
        }

    def test_evaluation_patterns_connected_and_distinct(self):
        pats = list(atlas.EVALUATION_PATTERNS.values())
        assert all(p.is_connected for p in pats)
        assert len({canonical_form(p) for p in pats}) == len(pats)

    def test_p8_is_dense(self):
        """p8 stresses the systems: a dense 6-vertex pattern."""
        assert atlas.P8.num_edges == 12


class TestPatternName:
    def test_known_names(self):
        assert atlas.pattern_name(atlas.TAILED_TRIANGLE) == "TT"
        assert atlas.pattern_name(atlas.FOUR_CLIQUE) == "4CL"
        assert atlas.pattern_name(atlas.P5) == "p5"

    def test_vertex_induced_suffix(self):
        assert atlas.pattern_name(atlas.FOUR_CYCLE.vertex_induced()) == "C4-V"

    def test_unknown_pattern_gets_summary(self):
        from repro.core.pattern import Pattern

        weird = Pattern(6, [(i, (i + 1) % 6) for i in range(6)] + [(0, 2)])
        name = atlas.pattern_name(weird)
        assert "6v7e" in name

    def test_name_ignores_numbering(self):
        relabeled = atlas.TAILED_TRIANGLE.relabel([3, 2, 1, 0])
        assert atlas.pattern_name(relabeled) == "TT"
