"""Engine correctness against the brute-force oracle, plus instrumentation.

All four substrates must count/enumerate identically — and identically to
an oracle that shares no code with them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import atlas
from repro.core.aggregation import MNIAggregation
from repro.core.pattern import Pattern
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine

from .oracle import brute_force_count, brute_force_match_tuples, brute_force_mni
from .strategies import connected_skeletons, data_graphs

ENGINES = [PeregrineEngine, AutoZeroEngine, GraphPiEngine, BigJoinEngine]


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestCountsAgainstOracle:
    def test_triangles(self, engine_cls, tiny_graph):
        assert engine_cls().count(tiny_graph, atlas.TRIANGLE) == brute_force_count(
            tiny_graph, atlas.TRIANGLE
        )

    def test_all_4motifs_tiny(self, engine_cls, tiny_graph):
        engine = engine_cls()
        for p in atlas.motif_patterns(4):
            assert engine.count(tiny_graph, p) == brute_force_count(tiny_graph, p), p

    def test_edge_induced_4patterns_small(self, engine_cls, small_graph):
        engine = engine_cls()
        for p in atlas.all_connected_patterns(4):
            assert engine.count(small_graph, p) == brute_force_count(small_graph, p)

    def test_five_vertex_pattern(self, engine_cls, tiny_graph):
        p = atlas.P1
        assert engine_cls().count(tiny_graph, p) == brute_force_count(tiny_graph, p)

    def test_labeled_pattern(self, engine_cls, small_labeled_graph):
        p = Pattern(3, [(0, 1), (1, 2)], labels=[0, 1, 0])
        assert engine_cls().count(small_labeled_graph, p) == brute_force_count(
            small_labeled_graph, p
        )

    def test_labeled_vertex_induced(self, engine_cls, small_labeled_graph):
        p = Pattern(3, [(0, 1), (1, 2)], labels=[0, 0, 0]).vertex_induced()
        assert engine_cls().count(small_labeled_graph, p) == brute_force_count(
            small_labeled_graph, p
        )

    def test_single_edge(self, engine_cls, small_graph):
        assert engine_cls().count(small_graph, Pattern(2, [(0, 1)])) == (
            small_graph.num_edges
        )


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestExplore:
    def test_explore_matches_oracle_set(self, engine_cls, tiny_graph):
        """Streams must cover exactly the oracle's occurrences (matches may
        differ by an automorphic re-assignment, so compare edge images)."""
        p = atlas.TAILED_TRIANGLE
        seen = set()

        def process(pattern, match):
            image = frozenset(
                tuple(sorted((match[u], match[v]))) for u, v in pattern.edges
            )
            seen.add(image)

        emitted = engine_cls().explore(tiny_graph, p, process)
        oracle = {
            frozenset(tuple(sorted((m[u], m[v]))) for u, v in p.edges)
            for m in brute_force_match_tuples(tiny_graph, p)
        }
        assert seen == oracle
        assert emitted == len(oracle)  # no duplicate occurrences emitted

    def test_explore_respects_anti_edges(self, engine_cls, tiny_graph):
        p = atlas.FOUR_CYCLE.vertex_induced()
        bad = []

        def process(pattern, match):
            for u, v in pattern.anti_edges:
                if tiny_graph.has_edge(match[u], match[v]):
                    bad.append(match)

        engine_cls().explore(tiny_graph, p, process)
        assert not bad

    def test_matches_are_injective(self, engine_cls, tiny_graph):
        p = atlas.FOUR_STAR.vertex_induced()

        def process(pattern, match):
            assert len(set(match)) == pattern.n

        engine_cls().explore(tiny_graph, p, process)

    def test_udf_counters(self, engine_cls, tiny_graph):
        engine = engine_cls()
        emitted = engine.explore(tiny_graph, atlas.TRIANGLE, lambda p, m: None)
        assert engine.stats.udf_calls == emitted
        assert engine.stats.udf_seconds >= 0.0


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestAggregation:
    def test_mni_matches_oracle(self, engine_cls, small_labeled_graph):
        p = Pattern(3, [(0, 1), (1, 2)], labels=[0, 1, 0])
        table = engine_cls().aggregate(small_labeled_graph, p, MNIAggregation())
        oracle = brute_force_mni(small_labeled_graph, p)
        assert table == oracle or _mni_equivalent(table, oracle, p)

    def test_count_aggregation_uses_fast_path(self, engine_cls, tiny_graph):
        from repro.core.aggregation import CountAggregation

        engine = engine_cls()
        count = engine.aggregate(tiny_graph, atlas.TRIANGLE, CountAggregation())
        assert count == brute_force_count(tiny_graph, atlas.TRIANGLE)
        assert engine.stats.udf_calls == 0  # counting never invokes a UDF


def _mni_equivalent(table, oracle, pattern) -> bool:
    """MNI columns for automorphic vertices may be permuted consistently."""
    from repro.core.isomorphism import automorphisms

    return any(
        tuple(table[a[v]] for v in range(pattern.n)) == oracle
        for a in automorphisms(pattern)
    )


class TestEnginesAgree:
    @given(data_graphs(min_n=6, max_n=12), connected_skeletons(max_n=4))
    @settings(max_examples=25, deadline=None)
    def test_all_engines_same_counts(self, graph, skel):
        expected = None
        for engine_cls in ENGINES:
            for pattern in (skel, skel.vertex_induced()):
                count = engine_cls().count(graph, pattern)
                oracle = brute_force_count(graph, pattern)
                assert count == oracle, (engine_cls.__name__, pattern)


class TestInstrumentation:
    def test_peregrine_counts_setops(self, small_graph):
        engine = PeregrineEngine()
        engine.count(small_graph, atlas.FOUR_CYCLE.vertex_induced())
        assert engine.stats.setops.intersections > 0
        assert engine.stats.setops.differences > 0  # anti-edges -> diffs

    def test_edge_induced_needs_no_differences(self, small_graph):
        engine = PeregrineEngine()
        engine.count(small_graph, atlas.FOUR_CYCLE)
        assert engine.stats.setops.differences == 0

    def test_filter_engines_branch_on_anti_edges(self, small_graph):
        for engine_cls in (GraphPiEngine, BigJoinEngine):
            engine = engine_cls()
            engine.count(small_graph, atlas.FOUR_CYCLE.vertex_induced())
            assert engine.stats.branches > 0
            assert engine.stats.filter_calls > 0

    def test_native_engines_never_branch(self, small_graph):
        for engine_cls in (PeregrineEngine, AutoZeroEngine):
            engine = engine_cls()
            engine.count(small_graph, atlas.FOUR_CYCLE.vertex_induced())
            assert engine.stats.branches == 0

    def test_bigjoin_materializes_levels(self, small_graph):
        bj = BigJoinEngine()
        bj.count(small_graph, atlas.TRIANGLE)
        dfs = PeregrineEngine()
        dfs.count(small_graph, atlas.TRIANGLE)
        # BFS materializes intermediate bindings; the DFS fast path none.
        assert bj.stats.materialized > dfs.stats.materialized

    def test_reset_stats(self, small_graph):
        engine = PeregrineEngine()
        engine.count(small_graph, atlas.TRIANGLE)
        engine.reset_stats()
        assert engine.stats.setops.total_ops == 0
        assert engine.stats.matches == 0

    def test_stats_merge(self, small_graph):
        a = PeregrineEngine()
        a.count(small_graph, atlas.TRIANGLE)
        b = PeregrineEngine()
        b.count(small_graph, atlas.FOUR_CYCLE)
        total = a.stats.matches + b.stats.matches
        a.stats.merge(b.stats)
        assert a.stats.matches == total


class TestGraphPiOrderSelection:
    def test_orders_are_cached(self, small_graph):
        engine = GraphPiEngine()
        p = atlas.P1
        first = engine._select_order(p, small_graph)
        second = engine._select_order(p, small_graph)
        assert first is second or first == second

    def test_selected_order_is_connected_prefix(self, small_graph):
        engine = GraphPiEngine()
        order = engine._select_order(atlas.P4, small_graph)
        placed = set()
        for i, v in enumerate(order):
            if i:
                assert atlas.P4.neighbors(v) & placed
            placed.add(v)


class TestAutoZeroMerging:
    def test_merged_counts_match_individual(self, small_graph):
        engine = AutoZeroEngine()
        patterns = list(atlas.motif_patterns(4))
        merged = engine.count_set(small_graph, patterns)
        reference = PeregrineEngine()
        for p in patterns:
            assert merged[p] == reference.count(small_graph, p)

    def test_sharing_happens_for_motif_sets(self, small_graph):
        engine = AutoZeroEngine()
        engine.count_set(small_graph, list(atlas.all_connected_patterns(4)))
        assert engine.last_sharing_ratio < 1.0

    def test_merging_reduces_setops(self, small_graph):
        patterns = list(atlas.all_connected_patterns(4))
        merged = AutoZeroEngine()
        merged.count_set(small_graph, patterns)
        sequential = PeregrineEngine()
        sequential.count_set(small_graph, patterns)
        assert (
            merged.stats.setops.total_ops <= sequential.stats.setops.total_ops
        )

    def test_empty_set(self, small_graph):
        assert AutoZeroEngine().count_set(small_graph, []) == {}
