"""Zero-copy shared-memory graph transport tests.

The acceptance bar for the transport is *attach, don't copy*: a pool
worker's graph must be a window onto the parent's CSR arrays, not a
pickled replica. The tests prove it two ways — by writing through the
parent's segment and watching the attached graph change, and by probing
a live worker process for how its graph arrived.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.aggregation import CountAggregation
from repro.core.atlas import TRIANGLE
from repro.engines import execution
from repro.engines.execution import (
    ProcessShardExecutor,
    SerialShardExecutor,
    SharedGraphPayload,
    _init_shard_worker,
    _probe_worker_graph,
    export_graph,
    run_sharded,
)
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph


@pytest.fixture
def payload(small_graph):
    p = SharedGraphPayload.export(small_graph)
    yield p
    p.dispose()


class TestExportAttach:
    def test_round_trip_structure(self, small_graph, payload):
        attached = payload.attach()
        assert attached.num_vertices == small_graph.num_vertices
        assert attached.num_edges == small_graph.num_edges
        assert attached.name == small_graph.name
        assert np.array_equal(attached.indptr, small_graph.indptr)
        assert np.array_equal(attached.indices, small_graph.indices)
        assert attached.indices.dtype == small_graph.indices.dtype

    def test_attached_graph_is_window_not_copy(self, small_graph, payload):
        """Mutating the parent's segment must show through the attached graph."""
        attached = payload.attach()
        offset, shape, dtype = payload.blocks["indices"]
        parent_view = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=payload._shm.buf, offset=offset
        )
        original = int(attached.indices[0])
        sentinel = original + 1
        parent_view[0] = sentinel
        assert int(attached.indices[0]) == sentinel, (
            "attached graph did not alias the shared segment"
        )
        parent_view[0] = original

    def test_attached_arrays_read_only(self, payload):
        attached = payload.attach()
        assert attached.csr_transport == "shared_memory"
        assert not attached.indices.flags.writeable
        assert not attached.indptr.flags.writeable
        with pytest.raises(ValueError):
            attached.indices[0] = 0

    def test_labels_ship_through_segment(self, small_labeled_graph):
        payload = SharedGraphPayload.export(small_labeled_graph)
        try:
            attached = payload.attach()
            assert "labels" in payload.blocks
            assert np.array_equal(attached.labels, small_labeled_graph.labels)
            assert not attached.labels.flags.writeable
        finally:
            payload.dispose()

    def test_cleaning_counters_survive(self):
        g = DataGraph(4, [(0, 1), (0, 1), (2, 2), (1, 3)])
        payload = SharedGraphPayload.export(g)
        try:
            attached = payload.attach()
            assert attached.num_dropped_self_loops == 1
            assert attached.num_duplicate_edges == 1
        finally:
            payload.dispose()

    def test_payload_pickles_small(self, small_graph, payload):
        """The handle ships metadata only — never the edge data."""
        blob = pickle.dumps(payload)
        assert len(blob) < 1024
        assert pickle.loads(blob)._shm is None

    def test_dispose_unlinks_segment(self, small_graph):
        payload = SharedGraphPayload.export(small_graph)
        payload.dispose()
        with pytest.raises(FileNotFoundError):
            payload.attach()
        payload.dispose()  # idempotent

    def test_export_graph_falls_back_to_none(self, small_graph, monkeypatch):
        monkeypatch.setattr(
            SharedGraphPayload,
            "export",
            classmethod(lambda cls, g: (_ for _ in ()).throw(OSError("no shm"))),
        )
        assert export_graph(small_graph) is None


class TestWorkerInitializer:
    @pytest.fixture(autouse=True)
    def _save_worker_state(self):
        saved = execution._WORKER_STATE
        yield
        execution._WORKER_STATE = saved

    def test_initializer_attaches_payload(self, small_graph, payload):
        _init_shard_worker(PeregrineEngine(), payload, None)
        probe = _probe_worker_graph()
        assert probe["transport"] == "shared_memory"
        assert not probe["indices_writeable"]
        assert probe["num_edges"] == small_graph.num_edges

    def test_initializer_accepts_plain_graph(self, small_graph):
        _init_shard_worker(PeregrineEngine(), small_graph, None)
        probe = _probe_worker_graph()
        assert probe["transport"] == "pickle"
        assert probe["num_edges"] == small_graph.num_edges


class TestProcessPoolTransport:
    def test_workers_attach_not_copy(self, small_graph):
        """Live pool workers must report the shared-memory transport."""
        engine = PeregrineEngine()
        executor = ProcessShardExecutor(workers=2)
        try:
            try:
                executor._ensure_pool(engine, small_graph)
            except OSError:
                pytest.skip("process pools unavailable in this sandbox")
            if executor._payload is None:
                pytest.skip("shared memory unavailable in this sandbox")
            probes = [
                executor._pool.submit(_probe_worker_graph).result(timeout=60)
                for _ in range(2)
            ]
            for probe in probes:
                assert probe["transport"] == "shared_memory"
                assert not probe["indices_writeable"]
                assert probe["num_edges"] == small_graph.num_edges
        finally:
            executor.close()

    def test_pool_results_match_serial(self, small_graph):
        engine = PeregrineEngine()
        aggregation = CountAggregation()
        with SerialShardExecutor(4) as serial:
            expected = run_sharded(
                engine, small_graph, TRIANGLE, aggregation, serial
            )
        with ProcessShardExecutor(workers=2) as pool:
            got = run_sharded(engine, small_graph, TRIANGLE, aggregation, pool)
        assert got == expected

    def test_close_disposes_segment(self, small_graph):
        engine = PeregrineEngine()
        executor = ProcessShardExecutor(workers=2)
        try:
            executor._ensure_pool(engine, small_graph)
        except OSError:
            pytest.skip("process pools unavailable in this sandbox")
        payload = executor._payload
        if payload is None:
            executor.close()
            pytest.skip("shared memory unavailable in this sandbox")
        executor.close()
        with pytest.raises(FileNotFoundError):
            payload.attach()
