"""Tests for the structured-telemetry subsystem (``repro.observe``).

The two load-bearing guarantees: tracing changes **nothing** (results are
byte-for-byte identical with tracing on or off, serial and sharded), and
the trace is **coherent** (span nesting holds, phase spans reconcile
exactly with the result's ``*_seconds`` fields, audits pair predictions
with measurements).
"""

from __future__ import annotations

import json

import pytest

from repro.core.aggregation import MNIAggregation
from repro.core.atlas import TRIANGLE, motif_patterns
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.sumpa.engine import SumPAEngine
from repro.morph.session import MorphingSession
from repro.observe import (
    CostAuditRecord,
    MetricsRegistry,
    RunTrace,
    Span,
    Tracer,
    load_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observe.audit import rank_agreement
from repro.observe.tracer import timed_span
from repro.testing.oracle import assert_matches_oracle


def run_pair(graph, patterns, **kwargs):
    """The same workload untraced and traced, on fresh engines.

    The byte-identity of the two result mappings is already asserted by
    the shared oracle helper; callers assert the rest (measured costs,
    trace contents).
    """
    traced, plain = assert_matches_oracle(
        graph,
        patterns,
        PeregrineEngine,
        oracle_kwargs=kwargs,
        tracer=Tracer(),
        **kwargs,
    )
    return plain, traced


class TestTraceInvariance:
    def test_serial_results_identical(self, small_graph):
        plain, traced = run_pair(small_graph, list(motif_patterns(4)))
        assert plain.results == traced.results
        assert plain.measured == traced.measured

    def test_sharded_results_identical(self, small_graph):
        plain, traced = run_pair(small_graph, list(motif_patterns(3)), workers=2)
        assert plain.results == traced.results

    def test_mni_results_identical(self, small_labeled_graph):
        plain, traced = run_pair(
            small_labeled_graph, [TRIANGLE], aggregation=MNIAggregation()
        )
        assert plain.results == traced.results

    def test_streaming_results_identical(self, small_graph):
        seen_plain, seen_traced = [], []
        MorphingSession(PeregrineEngine()).run_streaming(
            small_graph, list(motif_patterns(3)), lambda p, m: seen_plain.append((p, m))
        )
        MorphingSession(PeregrineEngine(), tracer=Tracer()).run_streaming(
            small_graph, list(motif_patterns(3)), lambda p, m: seen_traced.append((p, m))
        )
        assert seen_plain == seen_traced

    def test_untraced_run_has_no_trace(self, small_graph):
        result = MorphingSession(PeregrineEngine()).run(small_graph, [TRIANGLE])
        assert result.trace is None


class TestTraceCoherence:
    def test_nesting_and_reconciliation(self, small_graph):
        tracer = Tracer()
        result = MorphingSession(PeregrineEngine(), tracer=tracer).run(
            small_graph, list(motif_patterns(4))
        )
        trace = result.trace
        trace.validate_nesting()
        stages = trace.stage_seconds()
        assert stages["transform"] == pytest.approx(result.transform_seconds)
        assert stages["match"] == pytest.approx(result.match_seconds)
        assert stages["convert"] == pytest.approx(result.convert_seconds)
        # Item spans partition the match window (no other work in it).
        item_total = sum(s.seconds for s in trace.find("match.item"))
        assert item_total <= result.match_seconds

    def test_kernel_spans_carry_counter_deltas(self, small_graph):
        tracer = Tracer()
        MorphingSession(PeregrineEngine(), tracer=tracer).run(
            small_graph, [TRIANGLE]
        )
        kernels = [s for s in tracer.spans if s.name.startswith("kernel")]
        assert kernels
        assert all("intersections" in s.attributes for s in kernels)
        total_intersections = sum(s.attributes["intersections"] for s in kernels)
        assert total_intersections == tracer.metrics.value(
            "engine.setops.intersections"
        )

    def test_sharded_spans_stitched_under_items(self, small_graph):
        tracer = Tracer()
        result = MorphingSession(
            PeregrineEngine(), tracer=tracer, workers=2
        ).run(small_graph, list(motif_patterns(3)))
        trace = result.trace
        trace.validate_nesting()
        shard_spans = trace.find("shard")
        assert shard_spans
        item_ids = {s.span_id for s in trace.find("match.item")}
        assert all(s.parent_id in item_ids for s in shard_spans)
        assert result.executor_seconds > 0.0
        assert trace.find("executor.setup") and trace.find("executor.teardown")

    def test_executor_seconds_in_total(self, small_graph):
        result = MorphingSession(PeregrineEngine(), workers=2).run(
            small_graph, [TRIANGLE]
        )
        assert result.total_seconds == pytest.approx(
            result.transform_seconds
            + result.match_seconds
            + result.convert_seconds
            + result.executor_seconds
        )
        assert result.executor_seconds > 0.0

    def test_serial_run_has_zero_executor_seconds(self, small_graph):
        result = MorphingSession(PeregrineEngine()).run(small_graph, [TRIANGLE])
        assert result.executor_seconds == 0.0

    def test_metrics_subsume_engine_stats(self, small_graph):
        tracer = Tracer()
        result = MorphingSession(PeregrineEngine(), tracer=tracer).run(
            small_graph, list(motif_patterns(3))
        )
        metrics = result.trace.metrics
        assert metrics["engine.setops.intersections"] == (
            result.stats.setops.intersections
        )
        assert metrics["engine.matches"] == result.stats.matches


class TestCostAudit:
    def test_one_record_per_measured_item(self, small_graph):
        tracer = Tracer()
        result = MorphingSession(PeregrineEngine(), tracer=tracer).run(
            small_graph, list(motif_patterns(4))
        )
        per_item = [a for a in tracer.audits if a.role != "selection"]
        assert len(per_item) == len(result.measured)
        for record in per_item:
            assert record.predicted_cost > 0.0
            assert record.measured_seconds > 0.0
            assert record.predicted_matches is not None
            assert record.measured_matches is not None  # count mode

    def test_selection_summary_record(self, small_graph):
        tracer = Tracer()
        MorphingSession(PeregrineEngine(), tracer=tracer).run(
            small_graph, list(motif_patterns(4))
        )
        summaries = [a for a in tracer.audits if a.role == "selection"]
        assert len(summaries) == 1
        assert summaries[0].extra["estimated_query_cost"] > 0.0

    def test_no_audits_when_morphing_disabled(self, small_graph):
        tracer = Tracer()
        MorphingSession(PeregrineEngine(), enabled=False, tracer=tracer).run(
            small_graph, [TRIANGLE]
        )
        assert tracer.audits == []

    def test_rank_agreement_bounds(self, small_graph):
        tracer = Tracer()
        MorphingSession(PeregrineEngine(), tracer=tracer).run(
            small_graph, list(motif_patterns(4))
        )
        score = rank_agreement(tracer.audits)
        assert score is None or 0.0 <= score <= 1.0

    def test_rank_agreement_synthetic(self):
        def rec(predicted, measured):
            return CostAuditRecord(
                item="x", pattern_id=0, variant="E", role="alternative",
                predicted_cost=predicted, measured_seconds=measured,
            )

        perfect = [rec(1.0, 0.1), rec(2.0, 0.2), rec(3.0, 0.3)]
        inverted = [rec(3.0, 0.1), rec(2.0, 0.2), rec(1.0, 0.3)]
        assert rank_agreement(perfect) == 1.0
        assert rank_agreement(inverted) == 0.0
        # Below two comparable pairs there is no verdict: a lone pair
        # would read 0.0/1.0 off a single noisy timing.
        assert rank_agreement([]) is None
        assert rank_agreement([rec(1.0, 0.1), rec(2.0, 0.2)]) is None

    @pytest.mark.parametrize(
        "engine_cls",
        [
            PeregrineEngine,
            AutoZeroEngine,
            GraphPiEngine,
            BigJoinEngine,
            SumPAEngine,
        ],
    )
    def test_every_engine_emits_audit_records(self, small_graph, engine_cls):
        """Traced morphed runs must never produce an empty audit — the
        regression behind BENCH_0001's degenerate peregrine scores."""
        tracer = Tracer()
        result = MorphingSession(engine_cls(), tracer=tracer).run(
            small_graph, list(motif_patterns(4))
        )
        per_item = [a for a in tracer.audits if a.role != "selection"]
        assert per_item, "no per-item CostAuditRecords were emitted"
        assert len(per_item) == len(result.measured)
        assert all(a.predicted_cost > 0.0 for a in per_item)
        assert all(a.measured_seconds > 0.0 for a in per_item)


class TestExporters:
    def _traced_run(self, small_graph):
        tracer = Tracer()
        result = MorphingSession(PeregrineEngine(), tracer=tracer).run(
            small_graph, list(motif_patterns(3))
        )
        return result.trace

    def test_jsonl_round_trip(self, small_graph, tmp_path):
        trace = self._traced_run(small_graph)
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        loaded = load_trace(path)
        assert [s.to_json() for s in loaded.spans] == [
            s.to_json() for s in trace.spans
        ]
        assert loaded.metrics == trace.metrics
        assert [a.to_json() for a in loaded.audits] == [
            a.to_json() for a in trace.audits
        ]
        assert loaded.meta == trace.meta
        loaded.validate_nesting()

    def test_jsonl_is_one_object_per_line(self, small_graph, tmp_path):
        trace = self._traced_run(small_graph)
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        lines = path.read_text().splitlines()
        kinds = [json.loads(line)["type"] for line in lines]
        assert kinds[0] == "meta"
        assert "span" in kinds and "metrics" in kinds and "cost_audit" in kinds

    def test_chrome_trace_shape(self, small_graph, tmp_path):
        trace = self._traced_run(small_graph)
        path = tmp_path / "trace.json"
        write_chrome_trace(trace, path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == len(trace.spans)
        assert all(e["ph"] == "X" for e in events)
        assert min(e["ts"] for e in events) == pytest.approx(0.0)
        assert all(e["dur"] >= 0 for e in events)

    def test_dominant_stage(self, small_graph):
        trace = self._traced_run(small_graph)
        assert trace.dominant_stage() == "match"
        assert RunTrace().dominant_stage() is None


class TestTracerPrimitives:
    def test_span_tree_shape(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b", k=1):
                pass
            with tracer.span("c"):
                pass
        a, b, c = tracer.spans
        assert (a.parent_id, b.parent_id, c.parent_id) == (None, a.span_id, a.span_id)
        assert b.attributes == {"k": 1}
        assert a.end >= c.end >= c.start >= b.end

    def test_adopt_remaps_and_clamps(self):
        worker = Tracer()
        with worker.span("shard"):
            with worker.span("kernel"):
                pass
        shard, kernel = worker.spans
        # Skew the worker clock far outside any parent window.
        for s in (shard, kernel):
            s.start += 1e6
            s.end += 1e6
        parent = Tracer()
        with parent.span("match.item"):
            parent.adopt([shard, kernel])
        trace = RunTrace(spans=parent.spans)
        trace.validate_nesting()
        adopted = trace.find("shard")[0]
        assert adopted.parent_id == trace.find("match.item")[0].span_id
        assert trace.find("kernel")[0].parent_id == adopted.span_id

    def test_timed_span_without_tracer(self):
        with timed_span(None, "anything", k=2) as watch:
            watch.attributes["extra"] = True
        assert watch.seconds >= 0.0
        assert watch.attributes == {"k": 2, "extra": True}

    def test_metrics_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.add("c", 2)
        reg.add("c", 3)
        reg.gauge("g", "x")
        reg.gauge("g", "y")
        assert reg.value("c") == 5
        assert reg.value("g") == "y"
        other = MetricsRegistry()
        other.add("c", 1)
        reg.merge(other)
        assert reg.value("c") == 6
        assert "c" in reg and len(reg) == 2

    def test_span_json_round_trip(self):
        span = Span(span_id=3, parent_id=1, name="n", start=1.5, end=2.5,
                    attributes={"w": [0, 4]})
        assert Span.from_json(span.to_json()) == span

    def test_engine_pickles_without_tracer(self, small_graph):
        import pickle

        engine = PeregrineEngine()
        engine.tracer = Tracer()
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.tracer is None

    def test_autozero_traced_counts_match(self, small_graph):
        plain = MorphingSession(AutoZeroEngine()).run(
            small_graph, list(motif_patterns(4))
        )
        traced = MorphingSession(AutoZeroEngine(), tracer=Tracer()).run(
            small_graph, list(motif_patterns(4))
        )
        assert plain.results == traced.results


class TestProgressReporter:
    """Cost-seeded ETA math on a fake clock — fully deterministic."""

    def _reporter(self, **kwargs):
        from repro.observe import ProgressReporter

        clock = {"now": 0.0}
        reporter = ProgressReporter(
            stream=None, clock=lambda: clock["now"], **kwargs
        )
        return reporter, clock

    def test_eta_calibrates_from_measurements(self):
        reporter, clock = self._reporter()
        reporter.start([("a", 1.0), ("b", 3.0)])
        # Before anything finishes: no rate, no ETA.
        assert reporter.seconds_per_cost is None
        assert reporter.eta_seconds() is None
        reporter.item_started("a")
        clock["now"] = 2.0
        reporter.item_finished("a", 2.0)
        # 2 measured seconds over 1 predicted cost unit ⇒ 2 s/unit;
        # 3 units remain ⇒ ETA 6 s.
        assert reporter.seconds_per_cost == pytest.approx(2.0)
        assert reporter.eta_seconds() == pytest.approx(6.0)
        snap = reporter.snapshot()
        assert snap.done_items == 1 and snap.total_items == 2
        assert snap.fraction_done == pytest.approx(0.25)  # cost-weighted
        assert snap.elapsed_seconds == pytest.approx(2.0)

    def test_prior_seeds_eta_before_first_finish(self):
        reporter, _clock = self._reporter(seconds_per_cost=0.5)
        reporter.start([("a", 4.0), ("b", 4.0)])
        # Algorithm 1's predicted costs × the prior ⇒ an ETA up front.
        assert reporter.eta_seconds() == pytest.approx(4.0)
        reporter.item_finished("a", 1.0)
        # Measurements override the prior (1s / 4 units = 0.25 s/unit).
        assert reporter.seconds_per_cost == pytest.approx(0.25)
        assert reporter.eta_seconds() == pytest.approx(1.0)

    def test_zero_cost_items_stay_finite(self):
        reporter, _clock = self._reporter()
        reporter.start([("a", 0.0), ("b", 0.0)])
        snap = reporter.snapshot()
        assert snap.total_cost > 0
        assert 0.0 <= snap.fraction_done <= 1.0
        reporter.item_finished("a", 0.0)
        assert reporter.eta_seconds() is not None

    def test_duplicate_and_unknown_finishes_ignored(self):
        reporter, _clock = self._reporter()
        reporter.start([("a", 1.0)])
        reporter.item_finished("a", 1.0)
        reporter.item_finished("a", 1.0)   # double-finish: no double count
        reporter.item_finished("ghost", 5.0)  # unknown label: ignored
        snap = reporter.snapshot()
        assert snap.done_items == 1
        assert reporter.seconds_per_cost == pytest.approx(1.0)

    def test_rendering_to_stream(self):
        import io

        from repro.observe import ProgressReporter

        clock = {"now": 0.0}
        stream = io.StringIO()
        reporter = ProgressReporter(
            stream=stream, min_interval=0.0, clock=lambda: clock["now"]
        )
        reporter.start([("tri", 1.0), ("star", 1.0)])
        reporter.item_started("tri")
        clock["now"] = 0.5
        reporter.item_finished("tri", 0.5)
        reporter.item_started("star")
        clock["now"] = 1.0
        reporter.item_finished("star", 0.5)
        reporter.finish()
        text = stream.getvalue()
        assert "# progress" in text
        assert "eta ~" in text
        assert "(tri)" in text
        # Final line is newline-terminated and reports completion.
        final = text.rstrip("\n").rsplit("\r", 1)[-1]
        assert "2/2 items" in final and "done in" in final
        assert text.endswith("\n")

    def test_throttling_respects_min_interval(self):
        import io

        from repro.observe import ProgressReporter

        clock = {"now": 0.0}
        stream = io.StringIO()
        reporter = ProgressReporter(
            stream=stream, min_interval=10.0, clock=lambda: clock["now"]
        )
        reporter.start([(str(i), 1.0) for i in range(50)])
        baseline_len = len(stream.getvalue())
        for i in range(50):  # all within the 10s window: no redraws
            reporter.item_finished(str(i), 0.01)
        assert len(stream.getvalue()) == baseline_len
        reporter.finish()  # the final line always renders
        assert "50/50 items" in stream.getvalue()

    def test_reporter_is_reusable(self):
        reporter, _clock = self._reporter()
        reporter.start([("a", 1.0)])
        reporter.item_finished("a", 1.0)
        reporter.finish()
        reporter.start([("b", 2.0), ("c", 2.0)])
        snap = reporter.snapshot()
        assert snap.done_items == 0 and snap.total_items == 2
        assert reporter.seconds_per_cost is None  # calibration reset too


class TestProgressIntegration:
    """Progress attached to real sessions: results stay identical."""

    def test_morphed_results_identical_with_progress(self, small_graph):
        from repro.observe import ProgressReporter

        patterns = list(motif_patterns(4))
        plain = MorphingSession(PeregrineEngine()).run(small_graph, patterns)
        reporter = ProgressReporter(stream=None)
        watched = MorphingSession(PeregrineEngine(), progress=reporter).run(
            small_graph, patterns
        )
        assert plain.results == watched.results
        snap = reporter.snapshot()
        assert snap.done_items == snap.total_items == len(watched.measured)
        assert snap.fraction_done == 1.0

    def test_baseline_results_identical_with_progress(self, small_graph):
        from repro.observe import ProgressReporter

        patterns = list(motif_patterns(3))
        plain = MorphingSession(PeregrineEngine(), enabled=False).run(
            small_graph, patterns
        )
        reporter = ProgressReporter(stream=None)
        watched = MorphingSession(
            PeregrineEngine(), enabled=False, progress=reporter
        ).run(small_graph, patterns)
        assert plain.results == watched.results
        assert reporter.snapshot().done_items == len(patterns)

    def test_run_facade_progress_kwarg(self, small_graph):
        import repro

        patterns = list(motif_patterns(3))
        plain = repro.run(small_graph, patterns)
        reporter = repro.ProgressReporter(stream=None)
        watched = repro.run(small_graph, patterns, progress=reporter)
        assert plain.results == watched.results
        assert reporter.snapshot().total_items > 0

    def test_progress_and_tracer_compose(self, small_graph):
        from repro.observe import ProgressReporter

        patterns = list(motif_patterns(4))
        plain = MorphingSession(PeregrineEngine()).run(small_graph, patterns)
        reporter = ProgressReporter(stream=None)
        both = MorphingSession(
            PeregrineEngine(), tracer=Tracer(), progress=reporter
        ).run(small_graph, patterns)
        assert plain.results == both.results
        # The measured durations fed to the reporter are the same
        # match.item spans the trace records.
        assert reporter.snapshot().done_items == len(
            [s for s in both.trace.spans if s.name == "match.item"]
        )

    def test_streaming_progress(self, small_graph):
        from repro.observe import ProgressReporter

        reporter = ProgressReporter(stream=None)
        session = MorphingSession(PeregrineEngine(), progress=reporter)
        matches = []
        result = session.run_streaming(
            small_graph, list(motif_patterns(3)),
            lambda p, m: matches.append(m),
        )
        assert matches
        assert result.results
        snap = reporter.snapshot()
        assert snap.done_items == snap.total_items > 0
