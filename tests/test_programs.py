"""Tests for the fluent pattern-programming front-end."""

from __future__ import annotations

import pytest

from repro.apps.programs import PatternProgram
from repro.core import atlas
from repro.core.pattern import Pattern
from repro.engines.bigjoin.engine import BigJoinEngine

from .oracle import brute_force_count, brute_force_mni


class TestTerminalOps:
    def test_count(self, small_graph):
        counts = PatternProgram.on(small_graph).match(atlas.TRIANGLE).count()
        assert counts[atlas.TRIANGLE] == brute_force_count(
            small_graph, atlas.TRIANGLE
        )

    def test_count_many(self, small_graph):
        queries = list(atlas.motif_patterns(4))
        counts = PatternProgram.on(small_graph).match(queries).count()
        for q in queries:
            assert counts[q] == brute_force_count(small_graph, q)

    def test_exists(self, small_graph, sparse_graph):
        assert PatternProgram.on(small_graph).match(atlas.TRIANGLE).exists()[
            atlas.TRIANGLE
        ]
        assert not PatternProgram.on(sparse_graph).match(atlas.FIVE_CLIQUE).exists()[
            atlas.FIVE_CLIQUE
        ]

    def test_mni(self, small_graph):
        tables = PatternProgram.on(small_graph).match(atlas.FOUR_PATH).mni()
        assert tables[atlas.FOUR_PATH] == brute_force_mni(
            small_graph, atlas.FOUR_PATH
        )

    def test_collect(self, tiny_graph):
        matches = PatternProgram.on(tiny_graph).match(atlas.TRIANGLE).collect()
        assert len(matches[atlas.TRIANGLE]) == brute_force_count(
            tiny_graph, atlas.TRIANGLE
        )
        for m in matches[atlas.TRIANGLE]:
            for u, v in atlas.TRIANGLE.edges:
                assert tiny_graph.has_edge(m[u], m[v])

    def test_for_each(self, tiny_graph):
        seen = []
        PatternProgram.on(tiny_graph).match(atlas.TRIANGLE).for_each(
            lambda p, m: seen.append(m)
        )
        assert len(seen) == brute_force_count(tiny_graph, atlas.TRIANGLE)


class TestFilters:
    def test_filtered_count(self, small_graph):
        program = (
            PatternProgram.on(small_graph)
            .match(atlas.TRIANGLE)
            .filter(lambda p, m: min(m) < 5)
        )
        counts = program.count()
        expected = sum(
            1
            for m in PatternProgram.on(small_graph).match(atlas.TRIANGLE).collect()[
                atlas.TRIANGLE
            ]
            if min(m) < 5
        )
        assert counts[atlas.TRIANGLE] == expected

    def test_filters_chain_conjunctively(self, small_graph):
        counts = (
            PatternProgram.on(small_graph)
            .match(atlas.TRIANGLE)
            .filter(lambda p, m: min(m) < 10)
            .filter(lambda p, m: max(m) > 15)
            .count()
        )
        collected = PatternProgram.on(small_graph).match(atlas.TRIANGLE).collect()
        expected = sum(
            1 for m in collected[atlas.TRIANGLE] if min(m) < 10 and max(m) > 15
        )
        assert counts[atlas.TRIANGLE] == expected

    def test_filtered_exists(self, small_graph):
        exists = (
            PatternProgram.on(small_graph)
            .match(atlas.TRIANGLE)
            .filter(lambda p, m: False)
            .exists()
        )
        assert exists[atlas.TRIANGLE] is False

    def test_mni_rejects_filters(self, small_graph):
        with pytest.raises(ValueError):
            PatternProgram.on(small_graph).match(atlas.TRIANGLE).filter(
                lambda p, m: True
            ).mni()


class TestMapReduce:
    def test_degree_sum(self, small_graph):
        """Sum of matched hub degrees — an aggregation UDF."""
        star = atlas.FOUR_STAR
        totals = (
            PatternProgram.on(small_graph)
            .match(star)
            .map(lambda p, m: small_graph.degree(m[0]))
            .reduce(lambda a, b: a + b, zero=0)
        )
        collected = PatternProgram.on(small_graph).match(star).collect()[star]
        assert totals[star] == sum(small_graph.degree(m[0]) for m in collected)

    def test_map_collect(self, tiny_graph):
        values = (
            PatternProgram.on(tiny_graph)
            .match(atlas.TRIANGLE)
            .map(lambda p, m: frozenset(m))
            .collect()
        )
        assert frozenset({0, 1, 2}) in values[atlas.TRIANGLE]

    def test_max_reduce(self, small_graph):
        best = (
            PatternProgram.on(small_graph)
            .match(atlas.TRIANGLE)
            .map(lambda p, m: max(m))
            .reduce(max, zero=-1)
        )
        assert best[atlas.TRIANGLE] >= 0


class TestConfiguration:
    def test_engine_override(self, small_graph):
        counts = (
            PatternProgram.on(small_graph)
            .match(atlas.FOUR_CYCLE.vertex_induced())
            .using(BigJoinEngine())
            .count()
        )
        assert counts[atlas.FOUR_CYCLE.vertex_induced()] == brute_force_count(
            small_graph, atlas.FOUR_CYCLE.vertex_induced()
        )

    def test_morphing_toggle_same_results(self, small_graph):
        queries = list(atlas.motif_patterns(3))
        on = PatternProgram.on(small_graph).match(queries).morphing(True).count()
        off = PatternProgram.on(small_graph).match(queries).morphing(False).count()
        assert on == off

    def test_empty_program(self, small_graph):
        assert PatternProgram.on(small_graph).count() == {}
        assert PatternProgram.on(small_graph).collect() == {}

    def test_match_accumulates(self, small_graph):
        program = (
            PatternProgram.on(small_graph)
            .match(atlas.TRIANGLE)
            .match([Pattern.path(3)])
        )
        counts = program.count()
        assert len(counts) == 2
