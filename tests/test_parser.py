"""Tests for the pattern DSL parser and serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import atlas
from repro.core.canonical import are_isomorphic
from repro.core.parser import (
    PatternSyntaxError,
    format_pattern,
    parse_pattern,
    pattern_from_dict,
    pattern_to_dict,
)
from repro.core.pattern import Pattern

from .strategies import patterns


class TestParsing:
    def test_triangle(self):
        p = parse_pattern("a-b, b-c, c-a")
        assert are_isomorphic(p, atlas.TRIANGLE)

    def test_chain_expansion(self):
        p = parse_pattern("a-b-c-d")
        assert are_isomorphic(p, atlas.FOUR_PATH)

    def test_cycle_via_chain(self):
        p = parse_pattern("a-b-c-d-a")
        assert are_isomorphic(p, atlas.FOUR_CYCLE)

    def test_anti_edge(self):
        p = parse_pattern("a-b, b-c, a!c")
        assert len(p.anti_edges) == 1
        assert p.has_anti_edge(0, 2)

    def test_labels(self):
        p = parse_pattern("a-b, b-c [a:1, b:2, c:1]")
        assert p.labels == (1, 2, 1)

    def test_partial_labels(self):
        p = parse_pattern("a-b [a:3]")
        assert p.label(0) == 3 and p.label(1) is None

    def test_numeric_names(self):
        p = parse_pattern("1-2, 2-3, 3-1")
        assert are_isomorphic(p, atlas.TRIANGLE)

    def test_first_appearance_ordering(self):
        p = parse_pattern("x-y, y-z")
        # x=0, y=1, z=2
        assert p.has_edge(0, 1) and p.has_edge(1, 2)

    def test_whitespace_insensitive(self):
        assert parse_pattern(" a - b ,b-c ") == parse_pattern("a-b,b-c")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "a",
            "a-",
            "-a",
            "a--b",
            "a-a",
            "a-b [a:]",
            "a-b [q:1]",
            "a-b [a:x]",
            "a-b, a!b",  # edge and anti-edge on the same pair
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(PatternSyntaxError):
            parse_pattern(bad)


class TestFormatting:
    def test_round_trip_named(self):
        for p in (atlas.TAILED_TRIANGLE, atlas.FOUR_CYCLE.vertex_induced(), atlas.P8):
            assert parse_pattern(format_pattern(p)) == p

    def test_round_trip_labeled(self):
        p = Pattern(3, [(0, 1), (1, 2)], labels=[4, 5, 4])
        assert parse_pattern(format_pattern(p)) == p

    @given(patterns(max_n=5, labeled=True))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_random(self, p: Pattern):
        if p.num_edges == 0 and not p.anti_edges:
            return  # the DSL cannot express edgeless patterns
        assert parse_pattern(format_pattern(p)) == p


class TestSerialization:
    @given(patterns(max_n=6, labeled=True))
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip(self, p: Pattern):
        assert pattern_from_dict(pattern_to_dict(p)) == p

    def test_dict_is_json_compatible(self):
        import json

        p = atlas.CHORDAL_FOUR_CYCLE.vertex_induced().with_labels([1, 2, 3, 4])
        data = json.loads(json.dumps(pattern_to_dict(p)))
        assert pattern_from_dict(data) == p
