"""Edge cases across the stack: degenerate graphs and unusual patterns."""

from __future__ import annotations

import pytest

from repro.core import atlas
from repro.core.aggregation import ExistenceAggregation, MNIAggregation
from repro.core.pattern import Pattern
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph
from repro.morph.session import MorphingSession

from .oracle import brute_force_count

ENGINES = [PeregrineEngine, AutoZeroEngine, GraphPiEngine, BigJoinEngine]


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestDegenerateGraphs:
    def test_edgeless_graph(self, engine_cls):
        graph = DataGraph(5, [], name="edgeless")
        assert engine_cls().count(graph, atlas.TRIANGLE) == 0
        assert engine_cls().count(graph, Pattern(2, [(0, 1)])) == 0

    def test_single_edge_graph(self, engine_cls):
        graph = DataGraph(2, [(0, 1)], name="k2")
        assert engine_cls().count(graph, Pattern(2, [(0, 1)])) == 1
        assert engine_cls().count(graph, atlas.TRIANGLE) == 0

    def test_pattern_larger_than_graph(self, engine_cls):
        graph = DataGraph(3, [(0, 1), (1, 2)], name="tiny3")
        assert engine_cls().count(graph, atlas.FIVE_CLIQUE) == 0

    def test_complete_graph(self, engine_cls):
        graph = DataGraph(5, [(i, j) for i in range(5) for j in range(i + 1, 5)])
        assert engine_cls().count(graph, atlas.FOUR_CLIQUE) == 5  # C(5,4)
        # Vertex-induced 4-cycles cannot exist inside a clique.
        assert engine_cls().count(graph, atlas.FOUR_CYCLE.vertex_induced()) == 0


class TestUnusualPatterns:
    def test_disconnected_pattern_supported(self, tiny_graph):
        """Two disjoint edges (2K2): supported, just not plan-optimal."""
        two_edges = Pattern(4, [(0, 1), (2, 3)])
        expected = brute_force_count(tiny_graph, two_edges)
        assert PeregrineEngine().count(tiny_graph, two_edges) == expected

    def test_disconnected_vertex_induced(self, tiny_graph):
        two_edges_v = Pattern(4, [(0, 1), (2, 3)]).vertex_induced()
        expected = brute_force_count(tiny_graph, two_edges_v)
        assert PeregrineEngine().count(tiny_graph, two_edges_v) == expected

    def test_single_vertex_pattern(self, tiny_graph):
        assert PeregrineEngine().count(tiny_graph, Pattern(1, [])) == (
            tiny_graph.num_vertices
        )

    def test_isolated_vertex_in_pattern(self, tiny_graph):
        """Triangle plus an isolated vertex (edge-induced)."""
        p = Pattern(4, [(0, 1), (1, 2), (0, 2)])
        expected = brute_force_count(tiny_graph, p)
        assert PeregrineEngine().count(tiny_graph, p) == expected


class TestExistenceThroughMorphing:
    def test_existence_aggregation_morphed(self, small_graph):
        """Existence is non-invertible: legal via the V-union direction."""
        agg = ExistenceAggregation()
        query = atlas.FOUR_CYCLE  # edge-induced
        baseline = MorphingSession(
            PeregrineEngine(), aggregation=agg, enabled=False
        ).run(small_graph, [query])
        morphed = MorphingSession(
            PeregrineEngine(), aggregation=agg, enabled=True, margin=1e9
        ).run(small_graph, [query])
        assert baseline.results == morphed.results
        assert isinstance(morphed.results[query], bool)

    def test_existence_early_termination(self, medium_graph):
        """One match settles existence: far fewer UDF calls than matches."""
        engine = PeregrineEngine()
        exists = engine.aggregate(medium_graph, atlas.TRIANGLE, ExistenceAggregation())
        assert exists is True
        total = PeregrineEngine().count(medium_graph, atlas.TRIANGLE)
        assert engine.stats.udf_calls < total

    def test_absent_pattern_is_false(self, sparse_graph):
        agg = ExistenceAggregation()
        assert (
            PeregrineEngine().aggregate(sparse_graph, atlas.FIVE_CLIQUE, agg)
            is False
        )


class TestMNIEdgeCases:
    def test_no_match_mni_is_zero(self, sparse_graph):
        table = PeregrineEngine().aggregate(
            sparse_graph, atlas.FIVE_CLIQUE, MNIAggregation()
        )
        assert MNIAggregation.support(table) == 0

    def test_mni_on_single_vertex_pattern(self, small_labeled_graph):
        p = Pattern(1, [], labels=[0])
        table = PeregrineEngine().aggregate(small_labeled_graph, p, MNIAggregation())
        assert MNIAggregation.support(table) == len(
            small_labeled_graph.vertices_by_label[0]
        )


class TestSessionEdgeCases:
    def test_duplicate_queries(self, small_graph):
        """The same pattern twice: one measurement, both keys answered."""
        q = atlas.FOUR_CYCLE.vertex_induced()
        result = MorphingSession(PeregrineEngine()).run(small_graph, [q, q])
        assert result.results[q] == brute_force_count(small_graph, q)

    def test_isomorphic_but_renumbered_queries(self, small_graph):
        a = atlas.TAILED_TRIANGLE
        b = atlas.TAILED_TRIANGLE.relabel([3, 2, 1, 0])
        result = MorphingSession(PeregrineEngine(), margin=1e9).run(
            small_graph, [a, b]
        )
        assert result.results[a] == result.results[b]
        assert result.results[a] == brute_force_count(small_graph, a)

    def test_clique_query_never_morphs(self, small_graph):
        result = MorphingSession(PeregrineEngine(), margin=1e9).run(
            small_graph, [atlas.FOUR_CLIQUE]
        )
        assert not result.selection.morphed[atlas.FOUR_CLIQUE]

    def test_streaming_empty_pattern_list(self, small_graph):
        result = MorphingSession(PeregrineEngine()).run_streaming(
            small_graph, [], lambda p, m: None
        )
        assert result.results == {}
