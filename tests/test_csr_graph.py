"""CSR storage tests: invariants, differential checks, I/O round-trips.

The differential suite pins the CSR-backed :class:`DataGraph` against a
deliberately naive dict-of-sets adjacency built independently from the
same edge stream — the representation the CSR refactor replaced. Any
divergence in neighbors, degrees, edge probes, or triangle counts is a
storage-layer bug by construction.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engines import setops
from repro.engines.base import EngineStats
from repro.graph.datagraph import DataGraph
from repro.graph.io import (
    load_edge_list,
    load_json_graph,
    save_edge_list,
    save_json_graph,
)


class DictOfSetsGraph:
    """The old-world reference: one Python set per vertex, no numpy."""

    def __init__(self, num_vertices, edges):
        self.num_vertices = num_vertices
        self.adj = {v: set() for v in range(num_vertices)}
        for u, v in edges:
            if u != v:
                self.adj[u].add(v)
                self.adj[v].add(u)

    def neighbors(self, v):
        return sorted(self.adj[v])

    def degree(self, v):
        return len(self.adj[v])

    def has_edge(self, u, v):
        return v in self.adj.get(u, ())

    def triangles(self):
        return sum(
            1
            for a, b, c in combinations(range(self.num_vertices), 3)
            if b in self.adj[a] and c in self.adj[a] and c in self.adj[b]
        )


def _csr_triangles(graph: DataGraph) -> int:
    """Triangle count straight off the CSR rows via the set-op kernels."""
    stats = EngineStats()
    total = 0
    for u, v in graph.edges():
        common = setops.intersect(
            graph.neighbors(u), graph.neighbors(v), stats.setops
        )
        # Symmetry-break: count each triangle once at its smallest edge.
        total += int(np.count_nonzero(common > v))
    return total


@st.composite
def raw_edge_streams(draw, max_n: int = 12):
    """Messy edge streams: self-loops and duplicates included on purpose."""
    n = draw(st.integers(2, max_n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=3 * n,
        )
    )
    return n, edges


class TestCsrInvariants:
    def test_structure(self, small_graph):
        indptr, indices, labels = small_graph.csr_arrays()
        assert indptr.dtype == np.int64
        assert len(indptr) == small_graph.num_vertices + 1
        assert indptr[0] == 0
        assert indptr[-1] == len(indices) == 2 * small_graph.num_edges
        assert np.all(np.diff(indptr) >= 0)
        for v in range(small_graph.num_vertices):
            row = indices[indptr[v] : indptr[v + 1]]
            assert np.all(np.diff(row) > 0), "rows must be sorted and unique"

    def test_small_graph_uses_int32_indices(self, small_graph):
        assert small_graph.indices.dtype == np.int32

    def test_arrays_read_only(self, small_graph):
        indptr, indices, _ = small_graph.csr_arrays()
        with pytest.raises(ValueError):
            indptr[0] = 1
        with pytest.raises(ValueError):
            indices[0] = 1

    def test_neighbors_alias_csr_buffer(self, small_graph):
        nb = small_graph.neighbors(0)
        assert not nb.flags.writeable
        assert not nb.flags.owndata
        assert nb.base is small_graph.indices or nb.base is small_graph.indices.base
        with pytest.raises(ValueError):
            nb[0] = 99

    def test_labels_read_only(self, small_labeled_graph):
        with pytest.raises(ValueError):
            small_labeled_graph.labels[0] = 5


class TestEdgeCleaning:
    def test_self_loops_counted(self):
        g = DataGraph(4, [(0, 1), (2, 2), (1, 3), (3, 3)])
        assert g.num_edges == 2
        assert g.num_dropped_self_loops == 2
        assert g.num_duplicate_edges == 0

    def test_duplicates_counted_across_orientations(self):
        g = DataGraph(4, [(0, 1), (1, 0), (0, 1), (2, 3)])
        assert g.num_edges == 2
        assert g.num_duplicate_edges == 2
        assert g.num_dropped_self_loops == 0

    def test_clean_stream_reports_zero(self):
        g = DataGraph(3, [(0, 1), (1, 2)])
        assert g.num_dropped_self_loops == 0
        assert g.num_duplicate_edges == 0

    def test_counts_survive_subgraph_rebuild(self):
        g = DataGraph(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph([0, 1, 2])
        assert sub.num_dropped_self_loops == 0
        assert sub.num_duplicate_edges == 0


class TestFromCsr:
    def test_adopts_arrays_without_copy(self, small_graph):
        indptr, indices, _ = small_graph.csr_arrays()
        g = DataGraph.from_csr(small_graph.num_vertices, indptr, indices)
        assert g.indptr is indptr
        assert g.indices is indices
        assert g.num_edges == small_graph.num_edges

    def test_matches_builder(self, small_graph):
        g = DataGraph.from_csr(
            small_graph.num_vertices,
            small_graph.indptr,
            small_graph.indices,
            name=small_graph.name,
        )
        assert np.array_equal(g.edge_array(), small_graph.edge_array())
        assert list(g.edges()) == list(small_graph.edges())

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            DataGraph.from_csr(
                3,
                np.array([0, 2, 1, 2], dtype=np.int64),
                np.array([1, 0], dtype=np.int32),
            )
        with pytest.raises(ValueError):
            DataGraph.from_csr(
                2,
                np.array([0, 1], dtype=np.int64),
                np.array([1, 0], dtype=np.int32),
            )


class TestDifferentialVsDictOfSets:
    @given(raw_edge_streams())
    @settings(max_examples=120, deadline=None)
    def test_neighbors_degree_has_edge(self, stream):
        n, edges = stream
        csr = DataGraph(n, edges)
        ref = DictOfSetsGraph(n, edges)
        for v in range(n):
            assert csr.neighbors(v).tolist() == ref.neighbors(v)
            assert csr.degree(v) == ref.degree(v)
        for u in range(n):
            for v in range(n):
                assert csr.has_edge(u, v) == ref.has_edge(u, v), (u, v)
        assert np.array_equal(csr.degrees, [ref.degree(v) for v in range(n)])

    @given(raw_edge_streams())
    @settings(max_examples=60, deadline=None)
    def test_triangle_counts(self, stream):
        n, edges = stream
        csr = DataGraph(n, edges)
        ref = DictOfSetsGraph(n, edges)
        assert _csr_triangles(csr) == ref.triangles()

    @given(raw_edge_streams())
    @settings(max_examples=60, deadline=None)
    def test_edge_iteration_matches(self, stream):
        n, edges = stream
        csr = DataGraph(n, edges)
        expected = sorted(
            {(min(u, v), max(u, v)) for u, v in edges if u != v}
        )
        assert list(csr.edges()) == expected
        assert csr.edge_array().tolist() == [list(e) for e in expected]

    @given(raw_edge_streams())
    @settings(max_examples=60, deadline=None)
    def test_cleaning_counters(self, stream):
        n, edges = stream
        csr = DataGraph(n, edges)
        loops = sum(1 for u, v in edges if u == v)
        unique = {(min(u, v), max(u, v)) for u, v in edges if u != v}
        assert csr.num_dropped_self_loops == loops
        assert csr.num_duplicate_edges == (len(edges) - loops) - len(unique)
        assert csr.num_edges == len(unique)


class TestIORoundTrip:
    def _assert_same_csr(self, a: DataGraph, b: DataGraph) -> None:
        assert b.num_vertices == a.num_vertices
        assert np.array_equal(b.indptr, a.indptr)
        assert np.array_equal(b.indices, a.indices)
        assert b.indices.dtype == a.indices.dtype

    def test_edge_list_round_trip_unlabeled(self, small_graph, tmp_path):
        path = tmp_path / "g.edges"
        save_edge_list(small_graph, path)
        loaded = load_edge_list(path)
        self._assert_same_csr(small_graph, loaded)
        assert loaded.labels is None

    def test_edge_list_round_trip_labeled(self, small_labeled_graph, tmp_path):
        path = tmp_path / "g.edges"
        label_path = tmp_path / "g.labels"
        save_edge_list(small_labeled_graph, path, label_path)
        loaded = load_edge_list(path, label_path)
        self._assert_same_csr(small_labeled_graph, loaded)
        assert np.array_equal(loaded.labels, small_labeled_graph.labels)

    def test_json_round_trip_labeled(self, small_labeled_graph, tmp_path):
        path = tmp_path / "g.json"
        save_json_graph(small_labeled_graph, path)
        loaded = load_json_graph(path)
        self._assert_same_csr(small_labeled_graph, loaded)
        assert np.array_equal(loaded.labels, small_labeled_graph.labels)

    def test_loader_compacts_sparse_ids(self, tmp_path):
        path = tmp_path / "sparse.edges"
        path.write_text("# comment\n10 20\n20 30\n")
        g = load_edge_list(path)
        assert g.num_vertices == 3
        assert list(g.edges()) == [(0, 1), (1, 2)]
