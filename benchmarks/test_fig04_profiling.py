"""Figure 4: profiling the baseline systems (no morphing).

Reproduces the paper's motivation measurements: where does time go in
each system and application? Asserted shapes:

* FSM is UDF-bound (4a): per-match MNI work dominates set operations.
* Enumeration pays UDF + materialization on top of set ops (4b).
* Counting is set-operation-bound with zero UDF calls (4c).
* GraphPi/BigJoin vertex-induced matching is Filter-UDF-bound and
  slower than edge-induced matching of the same shape (4d/4e).
* The data graph changes relative pattern performance (4f).
"""

from __future__ import annotations

import pytest

from repro.apps.fsm import mine_frequent_subgraphs
from repro.bench.harness import breakdown_row
from repro.core.atlas import (
    CHORDAL_FOUR_CYCLE,
    FOUR_CLIQUE,
    FOUR_STAR,
    TAILED_TRIANGLE,
)
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine

PATTERNS_4 = {
    "4S": FOUR_STAR,
    "TT": TAILED_TRIANGLE,
    "C4C": CHORDAL_FOUR_CYCLE,
    "4CL": FOUR_CLIQUE,
}


def test_fig4a_fsm_breakdown(benchmark, mico):
    """FSM on Peregrine: the MNI UDF dominates (Observation 1)."""
    engine = PeregrineEngine()
    result = benchmark.pedantic(
        lambda: mine_frequent_subgraphs(
            mico, support_threshold=40, max_edges=2, engine=engine, morph=False
        ),
        rounds=1,
        iterations=1,
    )
    stats = result.stats
    benchmark.extra_info.update(breakdown_row("3-FSM/MI", stats).as_dict())
    assert stats.udf_calls > 0
    assert stats.udf_seconds > stats.setops.seconds, (
        "FSM must be UDF-bound, not set-operation-bound"
    )


@pytest.mark.parametrize("name", list(PATTERNS_4))
def test_fig4b_enumeration_breakdown(name, benchmark, mico):
    """SE on Peregrine: UDF time is non-trivial even for a cheap UDF."""
    pattern = PATTERNS_4[name].vertex_induced()
    engine = PeregrineEngine()
    sink = []

    def run():
        engine.reset_stats()
        engine.explore(mico, pattern, lambda p, m: sink.append(m[0]))
        return engine.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(breakdown_row(f"SE/{name}", stats).as_dict())
    assert stats.udf_calls == stats.matches
    assert stats.udf_seconds > 0
    assert stats.materialized == stats.matches


@pytest.mark.parametrize("name", list(PATTERNS_4))
def test_fig4c_counting_breakdown(name, benchmark, mico):
    """SC on Peregrine: set operations dominate; no UDF, no match
    materialization (the counting fast path)."""
    pattern = PATTERNS_4[name].vertex_induced()
    engine = PeregrineEngine()

    def run():
        engine.reset_stats()
        engine.count(mico, pattern)
        return engine.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(breakdown_row(f"SC/{name}", stats).as_dict())
    assert stats.udf_calls == 0
    assert stats.materialized == 0
    assert stats.setops.total_ops > 0


@pytest.mark.parametrize("engine_cls", [GraphPiEngine, BigJoinEngine])
@pytest.mark.parametrize("name", ["TT", "C4C"])
def test_fig4de_filter_udf_bottleneck(engine_cls, name, benchmark, mico):
    """4d/4e: on edge-induced-only systems, vertex-induced queries pay a
    Filter UDF per match and run slower than their edge-induced twins."""
    pattern = PATTERNS_4[name]
    edge_engine = engine_cls()
    edge_engine.count(mico, pattern)
    edge_seconds = edge_engine.stats.total_seconds

    vertex_engine = engine_cls()

    def run():
        vertex_engine.reset_stats()
        vertex_engine.count(mico, pattern.vertex_induced())
        return vertex_engine.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    total = stats.total_seconds + stats.filter_seconds
    benchmark.extra_info.update(
        breakdown_row(f"{engine_cls.name}/{name}-V", stats, total).as_dict()
    )
    benchmark.extra_info["edge_induced_s"] = round(edge_seconds, 4)
    assert stats.filter_calls > 0
    assert stats.branches > 0
    assert total > edge_seconds, (
        "vertex-induced (filtered) must cost more than edge-induced"
    )


def test_fig4f_graph_structure_effect(benchmark, mico, mag):
    """4f: the relative cost of TT vs 4S differs across data graphs."""
    def measure(graph, pattern):
        engine = PeregrineEngine()
        engine.count(graph, pattern.vertex_induced())
        return engine.stats.total_seconds

    def run():
        return {
            "mico_TT": measure(mico, TAILED_TRIANGLE),
            "mico_4S": measure(mico, FOUR_STAR),
            "mag_TT": measure(mag, TAILED_TRIANGLE),
            "mag_4S": measure(mag, FOUR_STAR),
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio_mico = times["mico_4S"] / times["mico_TT"]
    ratio_mag = times["mag_4S"] / times["mag_TT"]
    benchmark.extra_info["ratio_4S_over_TT_mico"] = round(ratio_mico, 3)
    benchmark.extra_info["ratio_4S_over_TT_mag"] = round(ratio_mag, 3)
    # The structural point: the ratio is graph-dependent (Observation 3).
    assert ratio_mico != pytest.approx(ratio_mag, rel=0.05)
