"""Batched-frontier speedup benchmarks: ``batch_roots`` vs per-root DFS.

The performance claim behind :mod:`repro.engines.frontier`: expanding a
frontier of thousands of roots through whole-frontier numpy set-ops
amortizes the Python interpreter out of the match loop, so the batched
kernels beat the per-root DFS kernels by a wide margin on non-trivial
graphs while returning byte-identical results. The correctness half is
asserted on every run (it holds on any hardware); the ≥3× match-stage
floors are skipped under ``REPRO_BENCH_RECORD_ONLY=1`` where shared CI
runners make wall-clock ratios flaky — the measured ratios still land
in the benchmark report either way.

Both workloads warm the graph's derived structures (CSR adjacency keys
and the dense adjacency bitmap) outside the timed region: those are
one-time per-graph builds, not per-query match work.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import timed
from repro.core.atlas import FOUR_STAR, TAILED_TRIANGLE, motif_patterns
from repro.engines.frontier import DEFAULT_BATCH_ROOTS
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.generators import power_law_cluster
from repro.morph.session import MorphingSession
from repro.testing.oracle import results_equal

#: Match-stage speedup floor for batched vs per-root kernels.
BATCH_SPEEDUP_FLOOR = 3.0
#: Record measurements without asserting timing floors (CI smoke mode).
RECORD_ONLY = os.environ.get("REPRO_BENCH_RECORD_ONLY", "") not in ("", "0")


@pytest.fixture(scope="module")
def scale_graph():
    """~4,000-vertex clustered graph (same substrate the parallel
    scaling benchmarks use)."""
    graph = power_law_cluster(4000, 4, 0.3, seed=7, name="scale-4k")
    # Warm the one-time derived structures the batched kernels read.
    graph.adjacency_keys
    graph.dense_adjacency
    return graph


def _compare(engine_cls, graph, patterns, benchmark, workload):
    per_root_result, per_root_seconds = timed(
        lambda: MorphingSession(engine_cls(), enabled=True).run(graph, patterns)
    )
    batched_result, _wall = benchmark.pedantic(
        lambda: timed(
            lambda: MorphingSession(
                engine_cls(), enabled=True, batch_roots=DEFAULT_BATCH_ROOTS
            ).run(graph, patterns)
        ),
        rounds=1,
        iterations=1,
    )

    # Correctness holds on any hardware: batched == per-root, exactly.
    assert results_equal(batched_result.results, per_root_result.results)

    per_root_match = per_root_result.match_seconds
    batched_match = batched_result.match_seconds
    speedup = per_root_match / batched_match if batched_match > 0 else 1.0
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["graph"] = graph.name
    benchmark.extra_info["batch_roots"] = DEFAULT_BATCH_ROOTS
    benchmark.extra_info["per_root_match_s"] = round(per_root_match, 4)
    benchmark.extra_info["batched_match_s"] = round(batched_match, 4)
    benchmark.extra_info["per_root_total_s"] = round(per_root_seconds, 4)
    benchmark.extra_info["match_speedup"] = round(speedup, 3)

    if not RECORD_ONLY:
        assert speedup >= BATCH_SPEEDUP_FLOOR, (
            f"batched frontier expected >= {BATCH_SPEEDUP_FLOOR}x over "
            f"per-root on {workload}, measured {speedup:.2f}x"
        )


def test_batched_3mc(scale_graph, benchmark):
    """3-motif counting (triangle + wedge anti-pattern via morphing)."""
    _compare(
        PeregrineEngine, scale_graph, list(motif_patterns(3)), benchmark, "3-MC"
    )


def test_batched_tt_4s_v(scale_graph, benchmark):
    """TT+4S-V: the vertex-induced (anti-edge) workload.

    Runs on Peregrine, whose native anti-edge kernels spend the whole
    match stage in the plan interpreter the frontier batches replace.
    (GraphPi would answer this workload through its IEP counting
    shortcut, which never enters the per-root kernels being compared.)
    """
    patterns = [TAILED_TRIANGLE.vertex_induced(), FOUR_STAR.vertex_induced()]
    _compare(PeregrineEngine, scale_graph, patterns, benchmark, "TT+4S-V")
