"""Telemetry overhead and end-to-end trace acceptance benchmarks.

Two claims. First, the overhead claim behind the tracer's design: with
tracing **off** (the default), the instrumentation must be invisible —
the hot path pays one ``tracer is None`` test per kernel invocation and
nothing else, so the disabled-path cost extrapolated over a real run's
kernel-call count must stay under 2% of that run's wall time. The
traced-on/off wall ratio is recorded alongside for the report (tracing
on is allowed to cost more; it trades engine-native batching for
per-item measurement).

Second, the acceptance scenario for the telemetry subsystem as a whole:
a traced morphed 4-motif run on the 4k-vertex generator graph must
produce a JSONL trace whose span nesting validates, whose per-stage
sums reconcile with the result's ``*_seconds`` fields, and which holds
one cost-model audit record per measured alternative with both the
predicted and the measured side populated.

``REPRO_BENCH_RECORD_ONLY=1`` disables the timing assertions (CI smoke
mode); the structural acceptance assertions always run.
"""

from __future__ import annotations

import os
import time

from repro.bench.harness import timed
from repro.core.atlas import motif_patterns
from repro.engines.peregrine.engine import PeregrineEngine
from repro.morph.session import MorphingSession
from repro.observe import Tracer, load_trace, write_jsonl
from repro.observe.tracer import timed_span

from benchmarks.test_parallel_scaling import scale_graph  # noqa: F401  (fixture)

#: Tracing-off overhead ceiling relative to run wall time.
OVERHEAD_CEILING = 0.02
#: Record measurements without asserting timing floors (CI smoke mode).
RECORD_ONLY = os.environ.get("REPRO_BENCH_RECORD_ONLY", "") not in ("", "0")


def _disabled_primitive_seconds(calls: int) -> float:
    """Cost of ``calls`` disabled kernel-span entries (tracer off)."""
    engine = PeregrineEngine()
    assert engine.tracer is None
    start = time.perf_counter()
    for _ in range(calls):
        with engine.kernel_span("kernel"):
            pass
    return time.perf_counter() - start


def test_tracing_off_overhead_under_2pct(scale_graph, benchmark):  # noqa: F811
    """Disabled instrumentation must cost <2% of a serial 3-MC run.

    Measured as (disabled-path primitive cost) × (kernel invocations the
    run actually makes), against the run's wall time — a bound on what
    the instrumentation *can* add, immune to run-to-run noise in the
    full pipeline.
    """
    patterns = list(motif_patterns(3))
    result, run_seconds = benchmark.pedantic(
        lambda: timed(
            lambda: MorphingSession(PeregrineEngine(), enabled=True).run(
                scale_graph, patterns
            )
        ),
        rounds=1,
        iterations=1,
    )
    kernel_calls = max(1, result.stats.patterns_matched)
    primitive_seconds = _disabled_primitive_seconds(kernel_calls)
    overhead = primitive_seconds / run_seconds if run_seconds > 0 else 0.0

    _, traced_seconds = timed(
        lambda: MorphingSession(PeregrineEngine(), tracer=Tracer()).run(
            scale_graph, patterns
        )
    )

    benchmark.extra_info["workload"] = "3-MC serial"
    benchmark.extra_info["graph"] = scale_graph.name
    benchmark.extra_info["run_s"] = round(run_seconds, 4)
    benchmark.extra_info["kernel_calls"] = kernel_calls
    benchmark.extra_info["disabled_overhead_pct"] = round(100 * overhead, 4)
    benchmark.extra_info["traced_s"] = round(traced_seconds, 4)
    benchmark.extra_info["traced_ratio"] = round(
        traced_seconds / run_seconds if run_seconds > 0 else 1.0, 3
    )

    if not RECORD_ONLY:
        assert overhead < OVERHEAD_CEILING, (
            f"tracing-off instrumentation costs {100 * overhead:.2f}% of the "
            f"run ({kernel_calls} kernel calls), ceiling is "
            f"{100 * OVERHEAD_CEILING:.0f}%"
        )


def test_timed_span_disabled_path_is_cheap(benchmark):
    """The phase-timer shim without a tracer is a bare stopwatch."""
    def spin():
        for _ in range(10_000):
            with timed_span(None, "phase"):
                pass

    benchmark.pedantic(spin, rounds=1, iterations=1)


def test_traced_4motif_acceptance(scale_graph, tmp_path, benchmark):  # noqa: F811
    """The ISSUE's acceptance scenario, end to end on the 4k graph."""
    patterns = list(motif_patterns(4))
    tracer = Tracer()
    result, seconds = benchmark.pedantic(
        lambda: timed(
            lambda: MorphingSession(PeregrineEngine(), tracer=tracer).run(
                scale_graph, patterns
            )
        ),
        rounds=1,
        iterations=1,
    )
    path = tmp_path / "morphed-4mc.jsonl"
    write_jsonl(result.trace, path)
    trace = load_trace(path)
    benchmark.extra_info["graph"] = scale_graph.name
    benchmark.extra_info["run_s"] = round(seconds, 4)
    benchmark.extra_info["spans"] = len(trace.spans)
    benchmark.extra_info["audits"] = len(trace.audits)

    # Span nesting holds after the JSONL round trip.
    trace.validate_nesting()

    # Per-stage sums reconcile with the result's phase fields exactly
    # (they are the same timers); the round trip may lose float digits
    # to JSON, hence the tiny slack.
    stages = trace.stage_seconds()
    assert abs(stages["transform"] - result.transform_seconds) < 1e-6
    assert abs(stages["match"] - result.match_seconds) < 1e-6
    assert abs(stages["convert"] - result.convert_seconds) < 1e-6

    # One audit record per measured alternative, predictions and
    # measurements both populated.
    per_item = [a for a in trace.audits if a.role != "selection"]
    assert len(per_item) == len(result.measured)
    for record in per_item:
        assert record.predicted_cost > 0.0
        assert record.measured_seconds > 0.0
        assert record.measured_matches is not None
    assert sum(1 for a in trace.audits if a.role == "selection") == 1
