#!/usr/bin/env python3
"""Standalone experiment harness: regenerate every figure's rows as CSV.

Mirrors the paper artifact's scripts: each experiment prints
``workload,graph,morphed_time,baseline_time,speedup`` rows (plus counter
columns where the figure reports counters), and asserts baseline ==
morphed results throughout.

Run:  python benchmarks/run_all.py [--quick] [--record PATH]

``--quick`` restricts each experiment to its cheapest configuration
(the artifact's figXX-quick.sh convention). ``--record PATH`` also
condenses every row into a trajectory :class:`BenchRecord` — the same
schema ``repro bench record`` writes — at PATH (a ``BENCH_<seq>.json``
is auto-named when PATH is a directory), so the standalone harness
feeds the longitudinal store too.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.harness import FigureReport, compare_workload
from repro.core.atlas import (
    EVALUATION_PATTERNS,
    FOUR_PATH,
    FOUR_STAR,
    P9,
    P10,
    TAILED_TRIANGLE,
    all_connected_patterns,
    motif_patterns,
)
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph import datasets
from repro.graph.generators import (
    assign_labels,
    community_graph,
    power_law_cluster,
)
from repro.graph.partition import partition_subgraphs


def fig12(quick: bool) -> FigureReport:
    report = FigureReport("Figure 12", "Motif Counting (Peregrine & AutoZero)")
    sizes_graphs = [(3, "MI"), (4, "MI")] if quick else [
        (3, "MI"), (3, "MG"), (3, "PR"), (4, "MI"), (4, "MG"),
    ]
    for engine_cls in (PeregrineEngine, AutoZeroEngine):
        for size, code in sizes_graphs:
            graph = datasets.load(code)
            report.add(
                compare_workload(
                    engine_cls,
                    graph,
                    list(motif_patterns(size)),
                    workload=f"{engine_cls.name}/{size}-MC",
                )
            )
    return report


def fig13a(quick: bool) -> FigureReport:
    report = FigureReport("Figure 13a", "Subgraph Counting (Peregrine)")
    named = {"4S": FOUR_STAR, "4P": FOUR_PATH, **EVALUATION_PATTERNS}
    specs = ["4S", "4P", "4S+4P"] if quick else [
        "4S", "4P", "4S+4P", "p1", "p1+p2", "p4", "p5", "p4+p5", "p7", "p8",
    ]
    graph = datasets.mico()
    for spec in specs:
        patterns = [named[n].vertex_induced() for n in spec.split("+")]
        report.add(
            compare_workload(PeregrineEngine, graph, patterns, workload=spec)
        )
    return report


def fig13c(quick: bool) -> FigureReport:
    report = FigureReport("Figure 13c", "Frequent Subgraph Mining")
    from repro.apps.fsm import mine_frequent_subgraphs
    from repro.bench.harness import ComparisonRow

    graph = community_graph(10, 22, 0.35, 120, seed=41, name="fsm-comm")
    thresholds = [14] if quick else [20, 14, 10]
    for threshold in thresholds:
        base = mine_frequent_subgraphs(graph, threshold, max_edges=3, morph=False)
        morphed = mine_frequent_subgraphs(graph, threshold, max_edges=3, morph=True)
        assert base.frequent == morphed.frequent
        report.add(
            ComparisonRow(
                workload=f"3-FSM(t={threshold})",
                graph=graph.name,
                baseline_seconds=base.total_seconds,
                morphed_seconds=morphed.total_seconds,
                baseline_stats=base.stats,
                morphed_stats=morphed.stats,
                results_equal=True,
                morphed_patterns=0,
            )
        )
    return report


def fig14(quick: bool) -> FigureReport:
    report = FigureReport(
        "Figure 14", "Filter-UDF elimination (GraphPi & BigJoin)"
    )
    report.extra_columns["branch_miss_reduction"] = lambda r: r.branch_reduction
    named = {"TT": TAILED_TRIANGLE, "4S": FOUR_STAR, **EVALUATION_PATTERNS}
    specs = ["TT", "TT+4S"] if quick else ["TT", "4S", "TT+4S", "p1+p2"]
    graph = datasets.mico()
    for engine_cls in (GraphPiEngine, BigJoinEngine):
        for spec in specs:
            patterns = [named[n].vertex_induced() for n in spec.split("+")]
            report.add(
                compare_workload(
                    engine_cls, graph, patterns,
                    workload=f"{engine_cls.name}/{spec}",
                )
            )
    return report


def fig15ab(quick: bool) -> FigureReport:
    report = FigureReport("Figure 15a/b", "On-the-fly conversion (SE + filter)")
    from repro.bench.harness import ComparisonRow
    from repro.graph.generators import random_weights
    from repro.morph.session import MorphingSession

    import numpy as np

    graph = (
        assign_labels(power_law_cluster(170, 5, 0.5, seed=11, name="mico-small"), 29, seed=12)
        if quick
        else datasets.mico()
    )
    weights = random_weights(graph, seed=7)
    mean, std = float(np.mean(weights)), float(np.std(weights))

    def accept(match):
        total = 0.0
        for v in match:
            neigh = graph.neighbors(v)
            if len(neigh) == 0:
                local = float(weights[v])
            else:
                local = 0.5 * float(weights[v]) + 0.5 * float(np.mean(weights[neigh]))
            total += local
        return (mean - std) <= total / len(match) <= (mean + std)

    patterns = list(all_connected_patterns(4))

    def run(enabled):
        session = MorphingSession(PeregrineEngine(), enabled=enabled, margin=1.0)
        return session.run_streaming(graph, patterns, lambda p, m: None, vertex_filter=accept)

    base = run(False)
    morphed = run(True)
    assert base.results == morphed.results
    report.extra_columns["udf_reduction"] = lambda r: (
        r.baseline_stats.udf_calls / max(r.morphed_stats.udf_calls, 1)
    )
    from repro.bench.harness import ComparisonRow as _Row

    report.add(
        _Row(
            workload="4V-E+filter",
            graph=graph.name,
            baseline_seconds=base.total_seconds,
            morphed_seconds=morphed.total_seconds,
            baseline_stats=base.stats,
            morphed_stats=morphed.stats,
            results_equal=True,
            morphed_patterns=(
                sum(morphed.selection.morphed.values()) if morphed.selection else 0
            ),
        )
    )
    return report


def fig15cd(quick: bool) -> FigureReport:
    report = FigureReport("Figure 15c/d", "Large patterns on partitions")
    pr_part = max(
        partition_subgraphs(datasets.products(), 6, seed=1),
        key=lambda p: p.num_edges,
    )
    ok_part = max(
        partition_subgraphs(datasets.orkut(), 6, seed=1),
        key=lambda p: p.num_edges,
    )
    cases = [("pV10", P10, pr_part)] if quick else [
        ("pV9", P9, pr_part),
        ("pV10", P10, pr_part),
        ("pV9", P9, ok_part),
        ("pV10", P10, ok_part),
    ]
    for name, pattern, part in cases:
        for engine_cls in (PeregrineEngine, GraphPiEngine):
            report.add(
                compare_workload(
                    engine_cls, part, [pattern.vertex_induced()],
                    workload=f"{engine_cls.name}/{name}",
                )
            )
    return report


def _write_record(reports, args) -> None:
    """Condense every report's rows into one trajectory record."""
    import os

    from repro.bench.trajectory import BenchRecord, next_seq, save_record

    rows = [row for report in reports for row in report.rows]
    meta = {
        "source": "run_all",
        "quick": args.quick,
        "experiments": [report.figure for report in reports],
        "trials": 1,
    }
    record = BenchRecord.from_rows(rows, meta=meta)
    if os.path.isdir(args.record):
        path = save_record(record, root=args.record)
    else:
        parent = os.path.dirname(os.path.abspath(args.record))
        record.seq = next_seq(parent)
        path = record.write(args.record)
    print(f"# trajectory record written to {path}", file=sys.stderr)


EXPERIMENTS = {
    "fig12": fig12,
    "fig13a": fig13a,
    "fig13c": fig13c,
    "fig14": fig14,
    "fig15ab": fig15ab,
    "fig15cd": fig15cd,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="cheapest configs only")
    parser.add_argument(
        "--only", choices=sorted(EXPERIMENTS), help="run a single experiment"
    )
    parser.add_argument(
        "--output", help="append the CSV reports to this file as well"
    )
    parser.add_argument(
        "--record",
        metavar="PATH",
        help="write the rows as a trajectory BenchRecord (BENCH_*.json "
        "schema); PATH may be a directory (auto-named) or a .json file",
    )
    args = parser.parse_args()

    chosen = {args.only: EXPERIMENTS[args.only]} if args.only else EXPERIMENTS
    start = time.perf_counter()
    all_reports = []
    for name, experiment in chosen.items():
        print(f"\n### running {name} ...", file=sys.stderr)
        report = experiment(args.quick)
        all_reports.append(report)
        print(report.render())
        from repro.bench.reporting import speedup_chart

        print()
        print(
            speedup_chart(
                [(row.workload, row.speedup) for row in report.rows],
                title=f"{report.figure} — speedups (morphed vs baseline)",
            )
        )
        print(
            f"# geomean speedup {report.geometric_mean_speedup:.2f}x, "
            f"max {report.max_speedup:.2f}x"
        )
        if args.output:
            with open(args.output, "a") as f:
                f.write(report.render() + "\n")
    if args.record:
        _write_record(all_reports, args)
    print(
        f"\n# all experiments done in {time.perf_counter() - start:.1f}s "
        "(results verified equal baseline vs morphed)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
