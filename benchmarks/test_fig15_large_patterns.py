"""Figure 15c/15d: scaling Subgraph Morphing to 7-vertex patterns.

The §7.4 methodology: partition the Products and Orkut graphs (METIS in
the paper, LDG here), drop cut edges, and mine the 7-vertex patterns pV9
and pV10 within a partition on Peregrine (15c) and GraphPi (15d).

Substrate divergence, recorded in EXPERIMENTS.md: the paper reports 2-7×
wins because in C++ engines per-match work dwarfs set operations; in this
Python substrate anti-edge pruning is comparatively cheap and the
edge-induced closures of dense 7-vertex patterns are expensive, so the
cost model usually *declines* the morph. The asserted reproduction is
therefore (a) exact results through the full large-pattern machinery
(48- and 26-node S-DAGs, closure solves), (b) no regression from the
guided decision, and (c) the §7.5 shape: forcing the morph is slower —
the decline is correct, not a missed opportunity.
"""

from __future__ import annotations

import pytest

from repro.core.atlas import P9, P10
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.morph.session import MorphingSession

from .conftest import make_row, record_comparison, run_baseline_cached, run_morphed

_PATTERNS = {"pV9": P9.vertex_induced(), "pV10": P10.vertex_induced()}


@pytest.mark.parametrize("name", ["pV9", "pV10"])
@pytest.mark.parametrize("part_name", ["products_partition", "orkut_partition"])
def test_fig15c_peregrine_large_patterns(name, part_name, benchmark, request):
    graph = request.getfixturevalue(part_name)
    pattern = _PATTERNS[name]
    baseline = run_baseline_cached(PeregrineEngine, graph, [pattern], name)
    morphed = benchmark.pedantic(
        lambda: run_morphed(PeregrineEngine, graph, [pattern]),
        rounds=1,
        iterations=1,
    )
    row = make_row(name, graph, baseline, morphed)
    record_comparison(benchmark, row)
    assert row.results_equal
    # Tiny baselines (sparse partitions) are dominated by the fixed
    # transformation cost; bound the absolute overhead in that case.
    assert row.speedup > 0.6 or (
        row.morphed_seconds - row.baseline_seconds < 0.6
    ), "guided decision must not regress"


@pytest.mark.parametrize("name", ["pV9", "pV10"])
def test_fig15d_graphpi_large_patterns(name, benchmark, orkut_partition):
    pattern = _PATTERNS[name]
    baseline = run_baseline_cached(GraphPiEngine, orkut_partition, [pattern], name)
    morphed = benchmark.pedantic(
        lambda: run_morphed(GraphPiEngine, orkut_partition, [pattern]),
        rounds=1,
        iterations=1,
    )
    row = make_row(name, orkut_partition, baseline, morphed)
    record_comparison(benchmark, row)
    assert row.results_equal
    assert row.speedup > 0.6 or (
        row.morphed_seconds - row.baseline_seconds < 0.6
    )


def test_fig15cd_forced_morph_validates_decline(benchmark, products_partition):
    """Forcing the pV10 morph (margin → ∞) exercises the full 26-pattern
    closure and must (a) stay exact and (b) cost at least as much as the
    guided run — evidence the decline is the right call here."""
    pattern = _PATTERNS["pV10"]
    guided = run_morphed(PeregrineEngine, products_partition, [pattern])

    def forced():
        session = MorphingSession(PeregrineEngine(), enabled=True, margin=1e9)
        return session.run(products_partition, [pattern])

    forced_run = benchmark.pedantic(forced, rounds=1, iterations=1)
    benchmark.extra_info["guided_s"] = round(guided.total_seconds, 3)
    benchmark.extra_info["forced_s"] = round(forced_run.total_seconds, 3)
    benchmark.extra_info["forced_patterns"] = len(forced_run.measured)
    assert forced_run.results == guided.results
    assert len(forced_run.measured) > 1, "forcing must actually morph"
    assert forced_run.total_seconds >= guided.total_seconds * 0.9
