"""Figure 15a/15b: Subgraph Enumeration with on-the-fly conversion.

The §7.3 workload: enumerate all edge-induced 4-vertex patterns whose
matched vertices pass a weight filter. Because the filter depends only on
the matched vertex set, morphing evaluates it once per vertex-induced
alternative match — before the permutation fan-out — cutting UDF
invocations (5-16× in the paper; a ~1.5× call reduction at our scale
where Python matching is as expensive as the filter).

Two filters are benchmarked:

* the paper's plain weight-window filter — cheap in our substrate, so
  the profiled cost model (Section 5.2's UDF profiling) declines the
  morph and stays at baseline speed;
* a two-hop smoothed-weight filter — expensive enough that profiling
  drives the morph, and the filter-call reduction materializes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.atlas import all_connected_patterns
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.generators import random_weights
from repro.morph.session import MorphingSession


def _smoothed_filter(graph, weights):
    """Two-hop smoothed weight window: a realistic heavier analytics UDF."""
    mean, std = float(np.mean(weights)), float(np.std(weights))

    def accept(match):
        total = 0.0
        for v in match:
            neigh = graph.neighbors(v)
            if len(neigh) == 0:
                local = float(weights[v])
            else:
                local = 0.5 * float(weights[v]) + 0.5 * float(np.mean(weights[neigh]))
            total += local
        return (mean - std) <= total / len(match) <= (mean + std)

    return accept


def _cheap_filter(weights):
    from repro.apps.enumeration import weight_window_filter

    return weight_window_filter(weights)


def _run(graph, patterns, accept, enabled, margin=1.0):
    """margin=1.0 trusts the profiled filter cost outright; the cheap-
    filter case uses the default conservative margin instead."""
    session = MorphingSession(PeregrineEngine(), enabled=enabled, margin=margin)
    result = session.run_streaming(
        graph, patterns, lambda p, m: None, vertex_filter=accept
    )
    return result


def test_fig15a_expensive_filter_morphs(benchmark, mico_small):
    weights = random_weights(mico_small, seed=7)
    accept = _smoothed_filter(mico_small, weights)
    patterns = list(all_connected_patterns(4))
    baseline = _run(mico_small, patterns, accept, enabled=False)
    morphed = benchmark.pedantic(
        lambda: _run(mico_small, patterns, accept, enabled=True),
        rounds=1,
        iterations=1,
    )
    speedup = baseline.total_seconds / max(morphed.total_seconds, 1e-9)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["udf_calls_baseline"] = baseline.stats.udf_calls
    benchmark.extra_info["udf_calls_morphed"] = morphed.stats.udf_calls
    assert baseline.results == morphed.results, "streams must be identical"
    assert any(morphed.selection.morphed.values()), (
        "profiled expensive filter must drive the morph"
    )
    assert speedup > 0.85


def test_fig15b_udf_call_reduction(benchmark, mico_small):
    """Figure 15b: the UDF (filter) invocation reduction itself."""
    weights = random_weights(mico_small, seed=7)
    accept = _smoothed_filter(mico_small, weights)
    patterns = list(all_connected_patterns(4))
    baseline = _run(mico_small, patterns, accept, enabled=False)
    morphed = benchmark.pedantic(
        lambda: _run(mico_small, patterns, accept, enabled=True),
        rounds=1,
        iterations=1,
    )
    reduction = baseline.stats.udf_calls / max(morphed.stats.udf_calls, 1)
    benchmark.extra_info["udf_call_reduction"] = round(reduction, 3)
    assert reduction > 1.3, (
        "vertex-induced alternatives see each subgraph once; the baseline "
        "filters it once per containing pattern"
    )


def test_fig15a_cheap_filter_declines(benchmark, mico_small):
    """With the paper's plain weight filter, profiling reveals the UDF is
    cheap here and the model correctly declines (no §7.5 regression)."""
    weights = random_weights(mico_small, seed=7)
    accept = _cheap_filter(weights)
    patterns = list(all_connected_patterns(4))
    baseline = _run(mico_small, patterns, accept, enabled=False)
    morphed = benchmark.pedantic(
        lambda: _run(mico_small, patterns, accept, enabled=True, margin=0.6),
        rounds=1,
        iterations=1,
    )
    speedup = baseline.total_seconds / max(morphed.total_seconds, 1e-9)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["morphed_any"] = any(morphed.selection.morphed.values())
    assert baseline.results == morphed.results
    assert speedup > 0.8
