"""Figure 13a/13b: Subgraph Counting with morphing on Peregrine.

The paper's SC stress case: single vertex-induced patterns and pairs, so
alternative sets may require *extra* superpatterns the input never asked
for. The paper reports 1.2-24× speedups. At our scale the same shape
appears in two regimes:

* sparse 4/5-vertex patterns morph to edge-induced closures and win
  (most of the anti-edge set differences disappear);
* dense patterns (pV5, pV7, pV8) are cheap to match natively, so the
  cost model declines — and the assertion is that declining keeps the
  morphed path within noise of baseline (never a §7.5-style blowup).
"""

from __future__ import annotations

import pytest

from repro.core.atlas import EVALUATION_PATTERNS, FOUR_PATH, FOUR_STAR
from repro.engines.peregrine.engine import PeregrineEngine

from .conftest import make_row, record_comparison, run_baseline_cached, run_morphed


def _patterns(spec: str):
    named = {
        "4S": FOUR_STAR,
        "4P": FOUR_PATH,
        **EVALUATION_PATTERNS,
    }
    return [named[name].vertex_induced() for name in spec.split("+")]


def _bench(benchmark, graph, spec):
    patterns = _patterns(spec)
    label = f"SC:{spec}"
    baseline = run_baseline_cached(PeregrineEngine, graph, patterns, label)
    morphed = benchmark.pedantic(
        lambda: run_morphed(PeregrineEngine, graph, patterns), rounds=1, iterations=1
    )
    row = make_row(label, graph, baseline, morphed)
    record_comparison(benchmark, row)
    return row, morphed


@pytest.mark.parametrize("spec", ["4S", "4P", "4S+4P"])
def test_fig13a_sparse_patterns_morph_and_win(spec, benchmark, mico):
    row, morphed = _bench(benchmark, mico, spec)
    assert row.results_equal
    assert morphed.selection is not None
    assert any(morphed.selection.morphed.values()), "sparse V patterns morph"
    assert row.speedup > 1.2


@pytest.mark.parametrize("spec", ["p4", "p5", "p4+p5", "p7", "p8"])
def test_fig13a_dense_patterns_decline_safely(spec, benchmark, mico):
    """Dense vertex-induced patterns: native anti-edge pruning wins at
    this scale; the cost model must not force a losing morph."""
    row, _morphed = _bench(benchmark, mico, spec)
    assert row.results_equal
    # Sub-second baselines are dominated by the fixed transformation
    # cost; bound the absolute overhead there.
    assert row.speedup > 0.75 or (
        row.morphed_seconds - row.baseline_seconds < 0.3
    ), "a declined morph must stay near baseline"


@pytest.mark.parametrize("spec", ["p1", "p1+p2"])
def test_fig13a_five_vertex(spec, benchmark, mico):
    """5-vertex vertex-induced singles/pairs: native Peregrine anti-edge
    pruning is strong at this scale; the model declines and stays put."""
    row, _morphed = _bench(benchmark, mico, spec)
    assert row.results_equal
    # The 5-vertex closures pay a one-off canonicalization/transformation
    # cost and the baseline may be served from an earlier (warmer) cached
    # run; bound the regression loosely, exactness is the hard assert.
    assert row.speedup > 0.6


@pytest.mark.parametrize("spec", ["4S", "4P"])
def test_fig13b_setop_reduction(spec, benchmark, mico):
    """Figure 13b: set-operation time reduction for morphed SC queries."""
    row, morphed = _bench(benchmark, mico, spec)
    if morphed.selection and any(morphed.selection.morphed.values()):
        assert row.setop_reduction > 1.2
        assert row.morphed_stats.setops.differences < (
            row.baseline_stats.setops.differences
        )
