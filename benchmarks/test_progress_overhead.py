"""Progress-reporter overhead and ETA-accuracy acceptance benchmarks.

Two claims, mirroring ``test_trace_overhead.py``'s method. First, with
progress **off** (the default) the feature must be invisible: the
session's hot path pays a plain ``progress is None`` test per measured
item and the kernels pay nothing, so the disabled-guard cost
extrapolated over the run's *kernel-call* count — a vast overestimate of
how often the guard actually runs — must stay under 2% of the run's
wall time.

Second, the acceptance scenario for the estimate itself: on a morphed
4-motif run, the ETA produced after the first measured item finishes
(cost-model-seeded, measurement-calibrated) must land within a small
factor of the actually-remaining wall time. Timing assertions are
disabled under ``REPRO_BENCH_RECORD_ONLY=1`` (the CI smoke mode — a
busy 1-core runner makes any ETA advisory); the measured error is
recorded in ``extra_info`` either way.
"""

from __future__ import annotations

import os
import time

from repro.bench.harness import timed
from repro.core.atlas import motif_patterns
from repro.engines.peregrine.engine import PeregrineEngine
from repro.morph.session import MorphingSession
from repro.observe import ProgressReporter

from benchmarks.test_parallel_scaling import scale_graph  # noqa: F401  (fixture)

#: Progress-off overhead ceiling relative to run wall time.
OVERHEAD_CEILING = 0.02
#: Record measurements without asserting timing floors (CI smoke mode).
RECORD_ONLY = os.environ.get("REPRO_BENCH_RECORD_ONLY", "") not in ("", "0")


def _disabled_guard_seconds(checks: int) -> float:
    """Cost of ``checks`` evaluations of the disabled-progress guard."""
    session = MorphingSession(PeregrineEngine())
    assert session.progress is None
    start = time.perf_counter()
    for _ in range(checks):
        if session.progress is not None:  # the hot-path pattern, verbatim
            raise AssertionError("unreachable")
    return time.perf_counter() - start


def test_progress_off_overhead_under_2pct(scale_graph, benchmark):  # noqa: F811
    """Disabled progress must cost <2% of a serial 3-MC run.

    The guard actually runs ~3× per *measured item* (a handful per run);
    extrapolating its cost over the run's kernel-call count instead
    bounds what the feature *could* add even if the guard sat inside the
    kernels — the same noise-immune method as the tracer's bound.
    """
    patterns = list(motif_patterns(3))
    result, run_seconds = benchmark.pedantic(
        lambda: timed(
            lambda: MorphingSession(PeregrineEngine(), enabled=True).run(
                scale_graph, patterns
            )
        ),
        rounds=1,
        iterations=1,
    )
    kernel_calls = max(1, result.stats.patterns_matched)
    guard_seconds = _disabled_guard_seconds(kernel_calls)
    overhead = guard_seconds / run_seconds if run_seconds > 0 else 0.0

    _, watched_seconds = timed(
        lambda: MorphingSession(
            PeregrineEngine(), progress=ProgressReporter(stream=None)
        ).run(scale_graph, patterns)
    )

    benchmark.extra_info["workload"] = "3-MC serial"
    benchmark.extra_info["graph"] = scale_graph.name
    benchmark.extra_info["run_s"] = round(run_seconds, 4)
    benchmark.extra_info["kernel_calls"] = kernel_calls
    benchmark.extra_info["disabled_overhead_pct"] = round(100 * overhead, 4)
    benchmark.extra_info["progress_on_s"] = round(watched_seconds, 4)
    benchmark.extra_info["progress_on_ratio"] = round(
        watched_seconds / run_seconds if run_seconds > 0 else 1.0, 3
    )

    if not RECORD_ONLY:
        assert overhead < OVERHEAD_CEILING, (
            f"progress-off guard costs {100 * overhead:.2f}% of the run "
            f"({kernel_calls} kernel calls), ceiling is "
            f"{100 * OVERHEAD_CEILING:.0f}%"
        )


class _EtaProbe(ProgressReporter):
    """A silent reporter that journals its own ETA at every finish."""

    def __init__(self) -> None:
        super().__init__(stream=None)
        #: ``(wall_time, snapshot)`` at each item_finished call.
        self.events: list[tuple[float, object]] = []

    def item_finished(self, label: str, seconds: float) -> None:
        super().item_finished(label, seconds)
        self.events.append((time.perf_counter(), self.snapshot()))


def test_progress_eta_accuracy(scale_graph, benchmark):  # noqa: F811
    """The calibrated mid-run ETA must track the real remaining time.

    A morphed 4-motif run measures several alternatives; each finish
    re-calibrates seconds-per-cost-unit from measurements. The ETA at
    each mid-run finish is compared to the wall time actually remaining;
    the error is recorded, and (outside record-only mode) the median
    mid-run estimate must land within 4× either way — deliberately loose,
    it guards "the ETA is wired to the right costs", not scheduler luck.
    """
    patterns = list(motif_patterns(4))
    probe = _EtaProbe()
    result, run_seconds = benchmark.pedantic(
        lambda: timed(
            lambda: MorphingSession(PeregrineEngine(), progress=probe).run(
                scale_graph, patterns
            )
        ),
        rounds=1,
        iterations=1,
    )
    finished_at = time.perf_counter()
    assert result.results  # the run itself must be sane

    ratios = []
    for wall, snap in probe.events:
        actual_remaining = finished_at - wall
        if snap.done_items >= snap.total_items or snap.eta_seconds is None:
            continue  # the last finish predicts ~0 against ~0: no signal
        if actual_remaining < 1e-4:
            continue
        ratios.append(snap.eta_seconds / actual_remaining)

    benchmark.extra_info["graph"] = scale_graph.name
    benchmark.extra_info["run_s"] = round(run_seconds, 4)
    benchmark.extra_info["measured_items"] = len(result.measured)
    benchmark.extra_info["eta_samples"] = len(ratios)
    if ratios:
        ordered = sorted(ratios)
        median_ratio = ordered[len(ordered) // 2]
        benchmark.extra_info["eta_over_actual_median"] = round(median_ratio, 3)
        if not RECORD_ONLY:
            assert 0.25 <= median_ratio <= 4.0, (
                f"mid-run ETA off by more than 4x: eta/actual ratios {ordered}"
            )
    else:
        # Fewer than two measured items ⇒ no mid-run estimate to judge;
        # the reporter must still have seen every item through.
        assert probe.snapshot().done_items == len(result.measured)
