"""Ablations of the design choices DESIGN.md calls out.

Each test switches one mechanism off (or sweeps it) and measures the
consequence, quantifying why the design is the way it is:

* selection margin (the §7.5 guard against near-break-even morphs);
* AutoZero schedule merging (shared loop prefixes);
* symmetry breaking (without it, every match is found |Aut| times);
* the cost model's heavy-tail corrections (size-biased degree +
  clustering closure) vs. a plain Erdős–Rényi abstraction;
* compiled vs. interpreted matching kernels.
"""

from __future__ import annotations

import time

import pytest

from repro.core.atlas import all_connected_patterns, motif_patterns
from repro.core.costmodel import CostModel, GraphModel
from repro.core.isomorphism import automorphisms
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.base import EngineStats, run_plan
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.plan import ExplorationPlan
from repro.morph.session import MorphingSession


def test_ablation_selection_margin(benchmark, mico):
    """Margin sweep on 4-MC: every setting must stay exact; the default
    must be at least as fast as both extremes (no morph / blind morph)."""
    queries = list(motif_patterns(4))
    baseline = MorphingSession(PeregrineEngine(), enabled=False).run(mico, queries)

    def sweep():
        times = {}
        for margin in (0.0, 0.6, 1.0, 1e9):
            session = MorphingSession(PeregrineEngine(), enabled=True, margin=margin)
            result = session.run(mico, queries)
            assert result.results == baseline.results
            times[margin] = result.total_seconds
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for margin, seconds in times.items():
        benchmark.extra_info[f"margin_{margin}"] = round(seconds, 3)
    benchmark.extra_info["baseline_s"] = round(baseline.total_seconds, 3)
    # margin 0 = never morph: roughly the baseline (generous bound — the
    # sweep runs four full 4-MC sessions back to back, so cache state and
    # scheduling noise move single runs by tens of percent).
    assert times[0.0] <= baseline.total_seconds * 1.6
    # The default must beat never-morphing on this morph-friendly workload.
    assert times[0.6] < times[0.0]


def test_ablation_schedule_merging(benchmark, mico):
    """AutoZero with vs without merged schedules on the 4-pattern set."""
    patterns = [p for p in all_connected_patterns(4)]

    def run_unmerged():
        engine = AutoZeroEngine()
        start = time.perf_counter()
        counts = {p: engine.count(mico, p) for p in patterns}  # one by one
        return counts, time.perf_counter() - start, engine.stats

    merged_engine = AutoZeroEngine()
    start = time.perf_counter()
    merged_counts = merged_engine.count_set(mico, patterns)
    merged_seconds = time.perf_counter() - start

    unmerged_counts, unmerged_seconds, unmerged_stats = benchmark.pedantic(
        run_unmerged, rounds=1, iterations=1
    )
    assert merged_counts == unmerged_counts
    benchmark.extra_info["merged_s"] = round(merged_seconds, 3)
    benchmark.extra_info["unmerged_s"] = round(unmerged_seconds, 3)
    benchmark.extra_info["sharing_ratio"] = round(
        merged_engine.last_sharing_ratio, 3
    )
    # Merging must actually share loop levels and not do more set ops.
    assert merged_engine.last_sharing_ratio < 1.0
    assert (
        merged_engine.stats.setops.total_ops <= unmerged_stats.setops.total_ops
    )


@pytest.mark.parametrize("pattern_index", [0, 2, 4])
def test_ablation_symmetry_breaking(pattern_index, benchmark, mico):
    """Without partial orders every subgraph is found |Aut| times."""
    pattern = list(all_connected_patterns(4))[pattern_index]
    broken_plan = ExplorationPlan.build(pattern, symmetry_breaking=True)
    unbroken_plan = ExplorationPlan.build(pattern, symmetry_breaking=False)

    broken_stats = EngineStats()
    broken = run_plan(mico, broken_plan, broken_stats)

    def run_unbroken():
        stats = EngineStats()
        return run_plan(mico, unbroken_plan, stats), stats

    unbroken, unbroken_stats = benchmark.pedantic(run_unbroken, rounds=1, iterations=1)
    group = len(automorphisms(pattern))
    benchmark.extra_info["aut_group"] = group
    benchmark.extra_info["redundancy_removed"] = group
    assert unbroken == broken * group
    if group > 1:
        assert unbroken_stats.total_seconds > broken_stats.total_seconds * 0.9


def test_ablation_cost_model_corrections(benchmark, mico):
    """Heavy-tail corrections must not rank real match counts worse than
    the plain Erdős–Rényi abstraction."""
    patterns = list(all_connected_patterns(4))
    engine = PeregrineEngine()
    real = {p: engine.count(mico, p) for p in patterns}

    enhanced_model = GraphModel.from_graph(mico)
    plain_model = GraphModel(
        num_vertices=enhanced_model.num_vertices,
        edge_prob=enhanced_model.edge_prob,
        avg_degree=enhanced_model.avg_degree,
        biased_degree=enhanced_model.avg_degree,  # no size-bias correction
        closure_prob=enhanced_model.edge_prob,  # no clustering correction
        high_degree_threshold=enhanced_model.high_degree_threshold,
        label_fractions=enhanced_model.label_fractions,
    )

    def rank_quality(model) -> int:
        cm = CostModel(model)
        est = {p: cm.estimated_matches(p, "E") for p in patterns}
        by_est = sorted(patterns, key=lambda p: est[p])
        by_real = sorted(patterns, key=lambda p: real[p])
        return sum(1 for a, b in zip(by_est, by_real) if a == b)

    def run():
        return rank_quality(enhanced_model), rank_quality(plain_model)

    enhanced_score, plain_score = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["enhanced_rank_matches"] = enhanced_score
    benchmark.extra_info["plain_rank_matches"] = plain_score
    assert enhanced_score >= plain_score
    assert enhanced_score >= len(patterns) // 2


def test_ablation_compiled_kernels(benchmark, mico):
    """Compiled (AutoMine-style) kernels vs the interpreted kernel."""
    from repro.engines.autozero.codegen import run_compiled

    patterns = list(all_connected_patterns(4))
    plans = [ExplorationPlan.build(p) for p in patterns]

    interp_stats = EngineStats()
    start = time.perf_counter()
    interp_counts = [run_plan(mico, plan, interp_stats) for plan in plans]
    interp_seconds = time.perf_counter() - start

    def run():
        stats = EngineStats()
        start = time.perf_counter()
        counts = [run_compiled(mico, plan, stats) for plan in plans]
        return counts, time.perf_counter() - start

    compiled_counts, compiled_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert compiled_counts == interp_counts
    benchmark.extra_info["interpreted_s"] = round(interp_seconds, 3)
    benchmark.extra_info["compiled_s"] = round(compiled_seconds, 3)
    benchmark.extra_info["speedup"] = round(interp_seconds / compiled_seconds, 3)
    # Compilation removes interpretive overhead; it must never be much
    # slower, and is typically 1.1-1.5x faster.
    assert compiled_seconds < interp_seconds * 1.15


def test_ablation_iep_counting(benchmark, mico):
    """GraphPi's IEP: replace independent-suffix loops with arithmetic."""
    from repro.core.atlas import FIVE_STAR, FOUR_STAR
    from repro.engines.graphpi.engine import GraphPiEngine

    with_iep = GraphPiEngine()
    without = GraphPiEngine()
    without.use_iep = False

    start = time.perf_counter()
    on_counts = [with_iep.count(mico, FOUR_STAR), with_iep.count(mico, FIVE_STAR)]
    on_seconds = time.perf_counter() - start

    def run_plain():
        start = time.perf_counter()
        counts = [without.count(mico, FOUR_STAR), without.count(mico, FIVE_STAR)]
        return counts, time.perf_counter() - start

    off_counts, off_seconds = benchmark.pedantic(run_plain, rounds=1, iterations=1)
    assert on_counts == off_counts
    benchmark.extra_info["iep_s"] = round(on_seconds, 3)
    benchmark.extra_info["plain_s"] = round(off_seconds, 3)
    benchmark.extra_info["speedup"] = round(off_seconds / on_seconds, 1)
    # Stars collapse their leaf loops entirely; the win is order-of-magnitude.
    assert off_seconds > on_seconds * 5
