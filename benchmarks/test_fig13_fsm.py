"""Figure 13c: Frequent Subgraph Mining with morphing.

The paper reports 1.3-3.6× FSM speedups from morphing the most expensive
(frequently-labeled, loosely constrained) patterns into vertex-induced
alternatives with fewer matches, plus the §7.5 observation that *blind*
morphing (ignoring the cost model) is far slower than the query set.

At our 300-vertex scale the per-match MNI UDF no longer dominates the
way it does on 100K-vertex graphs (matching itself is Python-slow), so
the cost model usually declines FSM morphs; the asserted reproduction is

* exactness: frequent sets and supports identical with and without
  morphing, at every threshold;
* safety: the model-guided session stays within noise of baseline;
* the §7.5 shape: forcing every morph (huge margin) is measurably slower
  than the cost-model-guided run.
"""

from __future__ import annotations

import pytest

from repro.apps.fsm import mine_frequent_subgraphs
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.generators import community_graph


@pytest.fixture(scope="module")
def fsm_graph():
    """Community-structured labeled graph (co-purchase-like)."""
    return community_graph(10, 22, 0.35, 120, seed=41, name="fsm-comm")


_BASELINES: dict = {}


def _baseline(graph, threshold, max_edges=3):
    key = (graph.name, threshold, max_edges)
    if key not in _BASELINES:
        _BASELINES[key] = mine_frequent_subgraphs(
            graph, threshold, max_edges=max_edges, morph=False
        )
    return _BASELINES[key]


@pytest.mark.parametrize("threshold", [20, 14, 10])
def test_fig13c_fsm_morphing(threshold, benchmark, fsm_graph):
    base = _baseline(fsm_graph, threshold)
    morphed = benchmark.pedantic(
        lambda: mine_frequent_subgraphs(
            fsm_graph, threshold, max_edges=3, morph=True
        ),
        rounds=1,
        iterations=1,
    )
    speedup = base.total_seconds / max(morphed.total_seconds, 1e-9)
    benchmark.extra_info["threshold"] = threshold
    benchmark.extra_info["frequent_patterns"] = len(base.frequent)
    benchmark.extra_info["baseline_s"] = round(base.total_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["udf_calls_baseline"] = base.stats.udf_calls
    benchmark.extra_info["udf_calls_morphed"] = morphed.stats.udf_calls
    assert base.frequent == morphed.frequent, "morphing must be exact"
    # Low thresholds mine hundreds of patterns; per-level transformation
    # and timing noise both scale with candidate count, hence the loose
    # bound (exactness above is the hard guarantee).
    assert speedup > 0.5, "model-guided morphing must stay near baseline"


def test_fig13c_fsm_on_mico(benchmark, mico):
    base = _baseline(mico, 15)
    morphed = benchmark.pedantic(
        lambda: mine_frequent_subgraphs(mico, 15, max_edges=3, morph=True),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedup"] = round(
        base.total_seconds / max(morphed.total_seconds, 1e-9), 3
    )
    assert base.frequent == morphed.frequent


def test_fig13c_blind_morphing_is_slower(benchmark, fsm_graph):
    """§7.5: blindly morphing all input patterns loses to the query set
    (the paper's 22h-vs-14h case); the cost model exists to avoid this."""
    from repro.apps.fsm import FSMResult
    from repro.core.aggregation import MNIAggregation
    from repro.morph.session import MorphingSession

    threshold = 14
    base = _baseline(fsm_graph, threshold)

    def blind():
        # margin >> 1 forces every legal morph regardless of cost.
        engine = PeregrineEngine()
        session = MorphingSession(
            engine, aggregation=MNIAggregation(), enabled=True, margin=1e9
        )
        # Re-run the FSM levels manually with the forced session.
        from repro.apps import fsm as fsm_mod

        candidates = fsm_mod._seed_edge_patterns(fsm_graph)
        result = FSMResult(frequent={}, support_threshold=threshold, max_edges=3)
        level = 1
        while candidates and level <= 3:
            run = session.run(fsm_graph, candidates)
            result.total_seconds += run.total_seconds
            frequent_level = {}
            for pattern, table in run.results.items():
                support = MNIAggregation.support(table)
                if support >= threshold:
                    frequent_level[pattern] = support
            result.frequent.update(frequent_level)
            level += 1
            if level > 3:
                break
            candidates = fsm_mod._extend_patterns(frequent_level, result.frequent)
        return result

    forced = benchmark.pedantic(blind, rounds=1, iterations=1)
    guided = mine_frequent_subgraphs(fsm_graph, threshold, max_edges=3, morph=True)
    benchmark.extra_info["baseline_s"] = round(base.total_seconds, 3)
    benchmark.extra_info["guided_s"] = round(guided.total_seconds, 3)
    benchmark.extra_info["blind_s"] = round(forced.total_seconds, 3)
    assert forced.frequent == base.frequent, "even blind morphing is exact"
    assert forced.total_seconds > guided.total_seconds, (
        "blind morphing must be slower than cost-model-guided morphing"
    )
