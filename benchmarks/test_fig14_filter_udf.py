"""Figure 14: eliminating Filter UDFs on GraphPi and BigJoin.

GraphPi and BigJoin only match edge-induced patterns; vertex-induced
queries need a per-match Filter UDF whose data-dependent edge probes are
the dominant cost (98% of baseline time in the paper; Figures 4d/4e).
Morphing computes vertex-induced results from edge-induced closures with
*zero* UDF invocations. Paper numbers: 1.4-18× (GraphPi), 6.3-13.3×
(BigJoin), and a 1.7-88× branch-miss reduction (14c/d).

Asserted shape: morphed runs eliminate all filter branches, win clearly
on the moderate patterns (TT, 4S, pairs), and never blow up on the dense
5-vertex singles where the model may decline.
"""

from __future__ import annotations

import pytest

from repro.core.atlas import (
    EVALUATION_PATTERNS,
    FOUR_STAR,
    TAILED_TRIANGLE,
)
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine

from .conftest import make_row, record_comparison, run_baseline_cached, run_morphed

_NAMED = {"TT": TAILED_TRIANGLE, "4S": FOUR_STAR, **EVALUATION_PATTERNS}


def _bench(benchmark, engine_cls, graph, spec):
    patterns = [_NAMED[name].vertex_induced() for name in spec.split("+")]
    label = f"filter:{spec}"
    baseline = run_baseline_cached(engine_cls, graph, patterns, label)
    morphed = benchmark.pedantic(
        lambda: run_morphed(engine_cls, graph, patterns), rounds=1, iterations=1
    )
    row = make_row(label, graph, baseline, morphed)
    record_comparison(benchmark, row)
    return row, morphed


@pytest.mark.parametrize("spec", ["TT", "4S", "TT+4S"])
def test_fig14a_graphpi_speedup(spec, benchmark, mico):
    row, morphed = _bench(benchmark, GraphPiEngine, mico, spec)
    assert row.results_equal
    assert any(morphed.selection.morphed.values())
    assert row.speedup > 1.3
    # The headline mechanism: no Filter UDF, no branches.
    assert row.morphed_stats.branches == 0
    assert row.baseline_stats.branches > 0
    assert row.morphed_stats.filter_calls == 0


@pytest.mark.parametrize("spec", ["p1", "p4", "p1+p2"])
def test_fig14a_graphpi_dense_singles(spec, benchmark, mico):
    """Dense 5-vertex singles are marginal at this scale; assert only
    exactness and no blowup (the model may morph or decline)."""
    row, _morphed = _bench(benchmark, GraphPiEngine, mico, spec)
    assert row.results_equal
    assert row.speedup > 0.6


@pytest.mark.parametrize("spec", ["TT", "4S", "TT+4S"])
def test_fig14b_bigjoin_speedup(spec, benchmark, mico):
    row, morphed = _bench(benchmark, BigJoinEngine, mico, spec)
    assert row.results_equal
    assert any(morphed.selection.morphed.values())
    assert row.speedup > 1.3
    assert row.morphed_stats.branches == 0


@pytest.mark.parametrize("spec", ["TT", "TT+4S"])
def test_fig14c_graphpi_branch_misses(spec, benchmark, mico):
    """Figure 14c: branch misses drop to zero with morphing."""
    row, _ = _bench(benchmark, GraphPiEngine, mico, spec)
    assert row.baseline_stats.branch_misses > 0
    assert row.morphed_stats.branch_misses == 0
    benchmark.extra_info["branch_miss_reduction"] = row.baseline_stats.branch_misses


@pytest.mark.parametrize("spec", ["TT", "4S"])
def test_fig14d_bigjoin_branch_misses(spec, benchmark, mico):
    """Figure 14d: same elimination on BigJoin."""
    row, _ = _bench(benchmark, BigJoinEngine, mico, spec)
    assert row.baseline_stats.branch_misses > 0
    assert row.morphed_stats.branch_misses == 0
