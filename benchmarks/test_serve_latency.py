"""Resident-daemon latency: warm repeat queries vs cold ``repro.run``.

The service's performance claim: a query stream against the same graph
should not re-pay graph construction, plan search or matching on every
call. Cold mode rebuilds the graph and runs the full pipeline per
query; resident mode loads the graph into a :class:`MiningServer` once,
warms it with a single query, then submits the same three queries to
the steady-state daemon where each hits the result cache (and a
cache-bypassing repeat still hits the plan cache).

The ≥5× floor is asserted on the 3-query totals; under
``REPRO_BENCH_RECORD_ONLY=1`` (shared CI runners) the ratio is recorded
in the benchmark report without gating.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.bench.harness import timed
from repro.core.atlas import motif_patterns
from repro.graph.generators import power_law_cluster
from repro.serve import GraphRegistry, MiningServer

#: Resident vs cold total-latency floor for a 3-query repeat stream.
RESIDENT_SPEEDUP_FLOOR = 5.0
#: Record measurements without asserting timing floors (CI smoke mode).
RECORD_ONLY = os.environ.get("REPRO_BENCH_RECORD_ONLY", "") not in ("", "0")

#: One graph spec, rebuilt per cold query exactly like a fresh process
#: would (the dataset loaders memoize, which is the resident daemon's
#: whole advantage — the cold side must not get it for free).
GRAPH_SPEC = dict(n=400, m=5, p=0.45, seed=13)
QUERIES = 3


def _build_graph():
    return power_law_cluster(
        GRAPH_SPEC["n"],
        GRAPH_SPEC["m"],
        GRAPH_SPEC["p"],
        seed=GRAPH_SPEC["seed"],
        name="serve-bench",
    )


def _patterns():
    return list(motif_patterns(3))


def test_resident_repeat_stream_beats_cold(benchmark):
    patterns = _patterns()

    def cold_stream():
        answers = []
        for _ in range(QUERIES):
            graph = _build_graph()
            answers.append(repro.run(graph, patterns).results)
        return answers

    cold_answers, cold_seconds = timed(cold_stream)

    registry = GraphRegistry(share=False)
    registry.add("bench", _build_graph())
    texts = [repro.format_pattern(p) for p in patterns]
    request = {"op": "run", "graph": "bench", "patterns": texts}

    with MiningServer(registry=registry) as server:
        # Warm the daemon: the first-ever query computes and populates
        # the caches outside the timed region (a daemon is long-lived;
        # the steady state being measured is the repeat stream).
        first = server.handle(dict(request))
        assert first["ok"] and not first["cached"]

        def resident_stream():
            return [server.handle(dict(request)) for _ in range(QUERIES)]

        responses, resident_seconds = benchmark.pedantic(
            lambda: timed(resident_stream), rounds=1, iterations=1
        )

    assert all(r["ok"] for r in responses)
    assert [r["cached"] for r in responses] == [True, True, True]
    # Same answers as the cold pipeline, query by query.
    for cold, resident in zip(cold_answers, responses):
        for text, pattern in zip(texts, patterns):
            assert resident["results"][text] == cold[pattern]

    speedup = cold_seconds / resident_seconds if resident_seconds else float("inf")
    benchmark.extra_info["workload"] = "serve-3-query-repeat"
    benchmark.extra_info["cold_s"] = round(cold_seconds, 4)
    benchmark.extra_info["resident_s"] = round(resident_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    if not RECORD_ONLY:
        assert speedup >= RESIDENT_SPEEDUP_FLOOR, (
            f"resident stream only {speedup:.1f}x faster than cold "
            f"({resident_seconds:.3f}s vs {cold_seconds:.3f}s); "
            f"floor is {RESIDENT_SPEEDUP_FLOOR}x"
        )


def test_cache_bypass_still_skips_plan_search(benchmark):
    """Even with the result cache bypassed, warm repeats hit the plan
    cache — the planning stage is resident, not just the answers."""
    registry = GraphRegistry(share=False)
    registry.add("bench", _build_graph())
    texts = [repro.format_pattern(p) for p in _patterns()]
    request = {
        "op": "run",
        "graph": "bench",
        "patterns": texts,
        "use_result_cache": False,
    }
    with MiningServer(registry=registry) as server:
        cold = server.handle(dict(request))
        warm = benchmark.pedantic(
            lambda: server.handle(dict(request)), rounds=1, iterations=1
        )
    assert cold["metrics"] == {"plan.cache.miss": 1}
    assert warm["metrics"] == {"plan.cache.hit": 1}
    assert warm["results"] == cold["results"]
    benchmark.extra_info["workload"] = "serve-plan-cache-warm"
    benchmark.extra_info["cold_transform_s"] = round(cold["seconds"]["transform"], 4)
    benchmark.extra_info["warm_transform_s"] = round(warm["seconds"]["transform"], 4)
