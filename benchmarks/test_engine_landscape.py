"""Engine landscape: the same workloads across all five substrates.

Observation 4 (Section 3.4): design and implementation choices change the
*relative* performance between workloads per system — the reason morphing
must specialize its alternative sets per engine. This bench measures the
same queries on every engine, asserts result agreement (the substrates'
differential test at benchmark scale), and records the per-engine times
so the landscape is visible in the report.
"""

from __future__ import annotations

import time

import pytest

from repro.core.atlas import CHORDAL_FOUR_CYCLE, FOUR_STAR, TAILED_TRIANGLE
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.sumpa.engine import SumPAEngine

ENGINES = [
    PeregrineEngine,
    AutoZeroEngine,
    GraphPiEngine,
    BigJoinEngine,
    SumPAEngine,
]

WORKLOADS = {
    "TT-V": [TAILED_TRIANGLE.vertex_induced()],
    "C4C-V": [CHORDAL_FOUR_CYCLE.vertex_induced()],
    "4S-E": [FOUR_STAR],
    "{TT,C4C}-E": [TAILED_TRIANGLE, CHORDAL_FOUR_CYCLE],
}


def test_engine_landscape(benchmark, mico):
    def run():
        times: dict[str, dict[str, float]] = {}
        counts: dict[str, dict] = {}
        for engine_cls in ENGINES:
            times[engine_cls.name] = {}
            for workload, patterns in WORKLOADS.items():
                engine = engine_cls()
                start = time.perf_counter()
                result = engine.count_set(mico, patterns)
                times[engine_cls.name][workload] = time.perf_counter() - start
                counts.setdefault(workload, {})[engine_cls.name] = tuple(
                    result[p] for p in patterns
                )
        return times, counts

    times, counts = benchmark.pedantic(run, rounds=1, iterations=1)

    # Differential agreement: every engine, every workload, same counts.
    for workload, per_engine in counts.items():
        distinct = set(per_engine.values())
        assert len(distinct) == 1, f"engines disagree on {workload}: {per_engine}"

    # Observation 4: relative workload ordering differs across engines.
    orderings = {
        name: tuple(sorted(WORKLOADS, key=lambda w: per[w]))
        for name, per in times.items()
    }
    benchmark.extra_info.update(
        {name: " < ".join(order) for name, order in orderings.items()}
    )
    assert len(set(orderings.values())) > 1, (
        "at least two engines should rank the workloads differently"
    )
