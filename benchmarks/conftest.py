"""Shared benchmark fixtures: the synthetic dataset suite (Figure 11b).

Benchmarks compare baseline vs morphed runs; pytest-benchmark times the
morphed side while baseline timings, speedups and counter reductions are
recorded in ``benchmark.extra_info`` so the full figure row is visible in
the benchmark report (``--benchmark-verbose`` or the JSON export).
"""

from __future__ import annotations

import pytest

from repro.graph import datasets
from repro.graph.generators import assign_labels, power_law_cluster
from repro.graph.partition import partition_subgraphs


@pytest.fixture(scope="session")
def mico():
    return datasets.mico()


@pytest.fixture(scope="session")
def mag():
    return datasets.mag()


@pytest.fixture(scope="session")
def products():
    return datasets.products()


@pytest.fixture(scope="session")
def orkut():
    return datasets.orkut()


@pytest.fixture(scope="session")
def friendster():
    return datasets.friendster()


@pytest.fixture(scope="session")
def mico_small():
    """A reduced MiCo-like graph for the heaviest sweeps (5-MC, Fig 15e)."""
    g = power_law_cluster(170, 5, 0.5, seed=11, name="mico-small")
    return assign_labels(g, 29, skew=1.1, seed=12)


@pytest.fixture(scope="session")
def products_partition(products):
    """Densest LDG part of the Products stand-in (the §7.4 workload)."""
    parts = partition_subgraphs(products, 6, seed=1)
    return max(parts, key=lambda p: p.num_edges)


@pytest.fixture(scope="session")
def orkut_partition(orkut):
    parts = partition_subgraphs(orkut, 6, seed=1)
    return max(parts, key=lambda p: p.num_edges)


_BASELINE_CACHE: dict = {}


def run_baseline_cached(engine_cls, graph, patterns, workload, aggregation=None):
    """Baseline (no-morph) run, cached per (engine, graph, workload).

    Several figure benches share a baseline (e.g. the speedup and the
    set-op-reduction views of the same workload); caching keeps the
    benchmark suite's wall time dominated by the measured morphed runs.
    """
    from repro.morph.session import MorphingSession

    key = (engine_cls.__name__, graph.name, workload)
    if key not in _BASELINE_CACHE:
        session = MorphingSession(engine_cls(), aggregation=aggregation, enabled=False)
        _BASELINE_CACHE[key] = session.run(graph, list(patterns))
    return _BASELINE_CACHE[key]


def run_morphed(engine_cls, graph, patterns, aggregation=None):
    from repro.morph.session import MorphingSession

    session = MorphingSession(engine_cls(), aggregation=aggregation, enabled=True)
    return session.run(graph, list(patterns))


def make_row(workload, graph, baseline, morphed):
    """Build a ComparisonRow from two runs, asserting equal results."""
    from repro.bench.harness import ComparisonRow

    equal = set(baseline.results) == set(morphed.results) and all(
        baseline.results[k] == morphed.results[k] for k in baseline.results
    )
    assert equal, f"morphing changed results for {workload} on {graph.name}"
    return ComparisonRow(
        workload=workload,
        graph=graph.name,
        baseline_seconds=baseline.total_seconds,
        morphed_seconds=morphed.total_seconds,
        baseline_stats=baseline.stats,
        morphed_stats=morphed.stats,
        results_equal=equal,
        morphed_patterns=(
            sum(morphed.selection.morphed.values()) if morphed.selection else 0
        ),
    )


def record_comparison(benchmark, row) -> None:
    """Stash a ComparisonRow's figures into the benchmark report."""
    benchmark.extra_info["workload"] = row.workload
    benchmark.extra_info["graph"] = row.graph
    benchmark.extra_info["baseline_s"] = round(row.baseline_seconds, 4)
    benchmark.extra_info["morphed_s"] = round(row.morphed_seconds, 4)
    benchmark.extra_info["speedup"] = round(row.speedup, 3)
    benchmark.extra_info["setop_reduction"] = round(row.setop_reduction, 3)
    benchmark.extra_info["branch_misses_baseline"] = row.baseline_stats.branch_misses
    benchmark.extra_info["branch_misses_morphed"] = row.morphed_stats.branch_misses
    benchmark.extra_info["morphed_patterns"] = row.morphed_patterns
