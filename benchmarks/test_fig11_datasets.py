"""Figure 11b: the dataset table for the synthetic stand-in suite.

Regenerates the per-graph statistics rows (|V|, |E|, labels, max/avg
degree) and asserts the properties morphing relies on: the paper's
relative size ordering, label cardinalities, and heavy-tailed degrees.
"""

from __future__ import annotations

from repro.graph.datasets import load, summary_table


def test_fig11b_dataset_table(benchmark):
    rows = benchmark.pedantic(summary_table, rounds=1, iterations=1)
    table = {r["code"]: r for r in rows}
    benchmark.extra_info["rows"] = [
        f"{r['code']}: |V|={r['vertices']} |E|={r['edges']} "
        f"labels={r['labels']} maxdeg={r['max_degree']} avgdeg={r['avg_degree']}"
        for r in rows
    ]
    # Relative size ordering of Figure 11b.
    sizes = [table[c]["vertices"] for c in ("MI", "MG", "PR", "OK", "FR")]
    assert sizes == sorted(sizes)
    # Labeled graphs: MiCo / MAG / Products; MAG has the most labels.
    assert table["MI"]["labels"] and table["MG"]["labels"] and table["PR"]["labels"]
    assert table["OK"]["labels"] is None and table["FR"]["labels"] is None
    assert table["MG"]["labels"] > table["PR"]["labels"] > 1


def test_fig11b_degree_skew(benchmark):
    """All stand-ins are heavy-tailed: hubs far above the average degree."""
    def measure():
        return {
            code: (load(code).max_degree, load(code).avg_degree)
            for code in ("MI", "MG", "PR", "OK", "FR")
        }

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    for code, (max_deg, avg_deg) in stats.items():
        benchmark.extra_info[code] = f"max={max_deg} avg={avg_deg:.1f}"
        assert max_deg > 3 * avg_deg, f"{code} lacks degree skew"
