"""Scaling benchmarks: adaptive set-op kernels and shard parallelism.

Two performance claims live here. The kernel claim — the size-ratio
adaptive set operations beat the legacy merge-based kernels on skewed
power-law adjacency — is serial and holds on any hardware, so its ≥1.3×
floor is always asserted (unless record-only mode, below). The execution
layer's claim — near-linear scaling over root-vertex shards — only
materializes on multi-core hardware, so its speedup assertion is gated
on the cores actually available to this process; on a single-core runner
the benchmark still runs both configurations and asserts the results are
identical (the correctness half of the claim holds everywhere).

Setting ``REPRO_BENCH_RECORD_ONLY=1`` disables every timing assertion
and just records the measured ratios in the report — the mode CI's
bench-smoke job uses, where shared runners make wall-clock floors flaky.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import timed
from repro.core.atlas import motif_patterns
from repro.engines import setops
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.generators import power_law_cluster
from repro.morph.session import MorphingSession

WORKERS = 4
#: Speedup floor asserted at 4 workers on multi-core hosts.
SPEEDUP_FLOOR = 1.5
#: Serial floor for adaptive kernels vs the legacy merge-based kernels.
ADAPTIVE_SPEEDUP_FLOOR = 1.3
#: Record measurements without asserting timing floors (CI smoke mode).
RECORD_ONLY = os.environ.get("REPRO_BENCH_RECORD_ONLY", "") not in ("", "0")


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def scale_graph():
    """~4,000-vertex clustered graph: big enough to amortize pool startup."""
    return power_law_cluster(4000, 4, 0.3, seed=7, name="scale-4k")


def test_parallel_scaling_3mc(scale_graph, benchmark):
    patterns = list(motif_patterns(3))
    serial_result, serial_seconds = timed(
        lambda: MorphingSession(PeregrineEngine(), enabled=True).run(
            scale_graph, patterns
        )
    )
    parallel_result, parallel_seconds = benchmark.pedantic(
        lambda: timed(
            lambda: MorphingSession(
                PeregrineEngine(), enabled=True, workers=WORKERS
            ).run(scale_graph, patterns)
        ),
        rounds=1,
        iterations=1,
    )

    # Correctness holds on any hardware: parallel == serial, exactly.
    assert parallel_result.results == serial_result.results

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 1.0
    cores = _available_cores()
    benchmark.extra_info["workload"] = "3-MC"
    benchmark.extra_info["graph"] = scale_graph.name
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["serial_s"] = round(serial_seconds, 4)
    benchmark.extra_info["parallel_s"] = round(parallel_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)

    if cores >= 2 and not RECORD_ONLY:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x at {WORKERS} workers on "
            f"{cores} cores, measured {speedup:.2f}x"
        )


def test_adaptive_setops_serial_3mc(scale_graph, benchmark):
    """Adaptive kernels vs legacy merge-based kernels, serial 3-motif count.

    ``setops.use_adaptive(False)`` restores the pre-refactor kernel
    suite (``intersect1d``/``setdiff1d``/``isin``) exactly, so the
    legacy leg *is* the pre-CSR baseline for the kernel layer. The
    adaptive dispatch (galloping ``searchsorted`` when one side is
    ≥8× smaller) wins on power-law graphs because most intersections
    there pair a tiny candidate set against a hub's adjacency row.
    """
    patterns = list(motif_patterns(3))

    def run_once():
        return timed(
            lambda: MorphingSession(PeregrineEngine(), enabled=True).run(
                scale_graph, patterns
            )
        )

    run_once()  # warm caches (CSR rows, plan memos) outside the timing
    with setops.use_adaptive(False):
        legacy_result, legacy_seconds = run_once()
    adaptive_result, adaptive_seconds = benchmark.pedantic(
        run_once, rounds=1, iterations=1
    )

    assert adaptive_result.results == legacy_result.results

    speedup = legacy_seconds / adaptive_seconds if adaptive_seconds > 0 else 1.0
    benchmark.extra_info["workload"] = "3-MC serial"
    benchmark.extra_info["graph"] = scale_graph.name
    benchmark.extra_info["legacy_s"] = round(legacy_seconds, 4)
    benchmark.extra_info["adaptive_s"] = round(adaptive_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)

    if not RECORD_ONLY:
        assert speedup >= ADAPTIVE_SPEEDUP_FLOOR, (
            f"adaptive kernels expected >= {ADAPTIVE_SPEEDUP_FLOOR}x over "
            f"legacy, measured {speedup:.2f}x"
        )


def test_parallel_overhead_bounded_serial_executor(scale_graph, benchmark):
    """In-process sharding must cost little over the plain serial path.

    This is the overhead floor of the layer itself (split + merge +
    per-shard stats), separated from process-pool transport costs; it is
    meaningful on any core count.
    """
    patterns = list(motif_patterns(3))
    _, serial_seconds = timed(
        lambda: MorphingSession(PeregrineEngine(), enabled=True).run(
            scale_graph, patterns
        )
    )
    _, sharded_seconds = benchmark.pedantic(
        lambda: timed(
            lambda: MorphingSession(
                PeregrineEngine(), enabled=True, workers=WORKERS, executor="serial"
            ).run(scale_graph, patterns)
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["serial_s"] = round(serial_seconds, 4)
    benchmark.extra_info["sharded_serial_s"] = round(sharded_seconds, 4)
    # Generous bound: sharding 16 ways may repeat some per-shard setup.
    if not RECORD_ONLY:
        assert sharded_seconds <= serial_seconds * 2.0 + 0.5
