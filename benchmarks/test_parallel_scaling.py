"""Shard-parallel scaling: serial vs 4-worker motif counting.

The execution layer's performance claim — near-linear scaling over
root-vertex shards — only materializes on multi-core hardware, so the
speedup assertion is gated on the cores actually available to this
process. On a single-core runner the benchmark still runs both
configurations, asserts the results are identical (the correctness half
of the claim holds everywhere), and records the observed ratio in the
report; the ≥1.5× floor is asserted only with 2+ cores.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import timed
from repro.core.atlas import motif_patterns
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.generators import power_law_cluster
from repro.morph.session import MorphingSession

WORKERS = 4
#: Speedup floor asserted at 4 workers on multi-core hosts.
SPEEDUP_FLOOR = 1.5


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def scale_graph():
    """~4,000-vertex clustered graph: big enough to amortize pool startup."""
    return power_law_cluster(4000, 4, 0.3, seed=7, name="scale-4k")


def test_parallel_scaling_3mc(scale_graph, benchmark):
    patterns = list(motif_patterns(3))
    serial_result, serial_seconds = timed(
        lambda: MorphingSession(PeregrineEngine(), enabled=True).run(
            scale_graph, patterns
        )
    )
    parallel_result, parallel_seconds = benchmark.pedantic(
        lambda: timed(
            lambda: MorphingSession(
                PeregrineEngine(), enabled=True, workers=WORKERS
            ).run(scale_graph, patterns)
        ),
        rounds=1,
        iterations=1,
    )

    # Correctness holds on any hardware: parallel == serial, exactly.
    assert parallel_result.results == serial_result.results

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 1.0
    cores = _available_cores()
    benchmark.extra_info["workload"] = "3-MC"
    benchmark.extra_info["graph"] = scale_graph.name
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["serial_s"] = round(serial_seconds, 4)
    benchmark.extra_info["parallel_s"] = round(parallel_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)

    if cores >= 2:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x at {WORKERS} workers on "
            f"{cores} cores, measured {speedup:.2f}x"
        )


def test_parallel_overhead_bounded_serial_executor(scale_graph, benchmark):
    """In-process sharding must cost little over the plain serial path.

    This is the overhead floor of the layer itself (split + merge +
    per-shard stats), separated from process-pool transport costs; it is
    meaningful on any core count.
    """
    patterns = list(motif_patterns(3))
    _, serial_seconds = timed(
        lambda: MorphingSession(PeregrineEngine(), enabled=True).run(
            scale_graph, patterns
        )
    )
    _, sharded_seconds = benchmark.pedantic(
        lambda: timed(
            lambda: MorphingSession(
                PeregrineEngine(), enabled=True, workers=WORKERS, executor="serial"
            ).run(scale_graph, patterns)
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["serial_s"] = round(serial_seconds, 4)
    benchmark.extra_info["sharded_serial_s"] = round(sharded_seconds, 4)
    # Generous bound: sharding 16 ways may repeat some per-shard setup.
    assert sharded_seconds <= serial_seconds * 2.0 + 0.5
