"""Observability overhead acceptance benchmark (streaming histograms).

The daemon records four histogram observations plus two window-gauge
samples per query (end-to-end latency, queue wait, first result, three
per-engine stage times; depth at submit and pop). Those writes must be
invisible next to the query itself: the measured per-``record`` cost,
extrapolated over the *observation count* a query generates, must stay
under 2% of the query's wall time — the same noise-immune method as
``test_progress_overhead.py``.

A second probe measures the whole pipeline end to end: a dict-level
:class:`~repro.serve.MiningServer` (histograms + tracer tags + flight
recorder all live) against a bare :class:`MorphingSession` on the same
graph and patterns. The ratio is recorded in ``extra_info``; under
``REPRO_BENCH_RECORD_ONLY=1`` (CI smoke mode) the timing assertions are
skipped but the measurements still land in the JSON artifact.
"""

from __future__ import annotations

import os
import time

import repro
from repro.bench.harness import timed
from repro.core.atlas import motif_patterns
from repro.engines.peregrine.engine import PeregrineEngine
from repro.morph.session import MorphingSession
from repro.observe import StreamingHistogram
from repro.serve import GraphRegistry, MiningServer

from benchmarks.test_parallel_scaling import scale_graph  # noqa: F401  (fixture)

#: Histogram-write overhead ceiling relative to query wall time.
OVERHEAD_CEILING = 0.02
#: Observations a single served query generates (latency x3, stages x3)
#: plus window-gauge samples (submit + pop), rounded up for headroom.
OBSERVATIONS_PER_QUERY = 10
#: Record measurements without asserting timing floors (CI smoke mode).
RECORD_ONLY = os.environ.get("REPRO_BENCH_RECORD_ONLY", "") not in ("", "0")


def _record_seconds(observations: int) -> float:
    """Wall cost of ``observations`` StreamingHistogram.record calls."""
    hist = StreamingHistogram()
    values = [10.0 ** (-4 + (i % 80) / 10) for i in range(256)]
    start = time.perf_counter()
    for i in range(observations):
        hist.record(values[i % 256])
    elapsed = time.perf_counter() - start
    assert hist.count == observations
    return elapsed


def test_histogram_record_overhead_under_2pct(scale_graph, benchmark):  # noqa: F811
    """Per-query histogram writes must cost <2% of the query itself.

    The ~10 observations a query actually generates are extrapolated
    from a 100k-record microbenchmark, so scheduler noise on either
    side cannot fake a pass or a failure.
    """
    patterns = list(motif_patterns(3))
    _, run_seconds = benchmark.pedantic(
        lambda: timed(
            lambda: MorphingSession(PeregrineEngine(), enabled=True).run(
                scale_graph, patterns
            )
        ),
        rounds=1,
        iterations=1,
    )
    probe_n = 100_000
    per_record = _record_seconds(probe_n) / probe_n
    per_query = per_record * OBSERVATIONS_PER_QUERY
    overhead = per_query / run_seconds if run_seconds > 0 else 0.0

    benchmark.extra_info["workload"] = "3-MC serial"
    benchmark.extra_info["graph"] = scale_graph.name
    benchmark.extra_info["run_s"] = round(run_seconds, 4)
    benchmark.extra_info["record_ns"] = round(per_record * 1e9, 1)
    benchmark.extra_info["observations_per_query"] = OBSERVATIONS_PER_QUERY
    benchmark.extra_info["overhead_pct"] = round(100 * overhead, 6)

    if not RECORD_ONLY:
        assert overhead < OVERHEAD_CEILING, (
            f"{OBSERVATIONS_PER_QUERY} histogram records cost "
            f"{100 * overhead:.4f}% of a {run_seconds:.3f}s query, "
            f"ceiling is {100 * OVERHEAD_CEILING:.0f}%"
        )


def test_served_query_observability_overhead(scale_graph, benchmark):  # noqa: F811
    """End-to-end: daemon-path latency vs a bare session on the same work.

    The served path adds admission, histograms, tracer tags and flight
    recording on top of the session. Result caching is disabled so every
    round does the full mining work; plan caching applies to both sides
    (the server's plan cache vs the session's in-session reuse), so the
    delta isolates the observability envelope plus dispatch. The ratio
    is advisory (recorded, asserted loosely) because it includes
    scheduler dispatch, not just observability.
    """
    patterns = list(motif_patterns(3))
    texts = [repro.format_pattern(p) for p in patterns]

    registry = GraphRegistry(share=False)
    registry.add("bench", scale_graph)
    server = MiningServer(registry=registry)
    try:
        request = {
            "op": "run",
            "graph": "bench",
            "patterns": texts,
            "use_result_cache": False,
        }
        server.handle(dict(request))  # warm plan cache + code paths

        def served_round():
            response = server.handle(dict(request))
            assert response["ok"] and not response["cached"]

        _, served_seconds = benchmark.pedantic(
            lambda: timed(served_round), rounds=1, iterations=1
        )

        session = MorphingSession(PeregrineEngine(), enabled=True)
        session.run(scale_graph, patterns)  # warm the same way
        _, bare_seconds = timed(lambda: session.run(scale_graph, patterns))

        ratio = served_seconds / bare_seconds if bare_seconds > 0 else 1.0
        stats = server.handle({"op": "stats"})
        benchmark.extra_info["graph"] = scale_graph.name
        benchmark.extra_info["served_s"] = round(served_seconds, 4)
        benchmark.extra_info["bare_s"] = round(bare_seconds, 4)
        benchmark.extra_info["served_over_bare"] = round(ratio, 3)
        benchmark.extra_info["latency_p50_s"] = stats["histograms"][
            "serve.latency.total"
        ].get("p50")

        if not RECORD_ONLY:
            # Generous: dispatch + observability together may not double
            # the query. The precise <2% claim is the microbenchmark
            # above; this guards against a gross regression (e.g. a
            # lock held across the whole match).
            assert ratio < 2.0, (
                f"served query took {ratio:.2f}x the bare session "
                f"({served_seconds:.3f}s vs {bare_seconds:.3f}s)"
            )
    finally:
        server.close()
