"""Figure 15e: cost-model effectiveness across the alternative-set space.

The paper times 250 alternative pattern sets for 5-motif counting and
shows the cost model's pick lands within 10% of the optimum while the
space spans >3×. Scaled down: the motif-counting alternative space on a
reduced graph is the 2^5 = 32 variant assignments of the 4-motif closure
(each non-clique motif measured edge- or vertex-induced; any assignment
is a valid alternative set because the closure is the motif set itself).
Every assignment is executed and timed; asserted shape:

* the space is wide (worst/best > 2×);
* the model's choice is near-optimal (within 1.5× of the best set);
* the model's choice beats the input query set (the all-V assignment).
"""

from __future__ import annotations

from itertools import product

from repro.core.atlas import motif_patterns
from repro.core.costmodel import CostModel
from repro.core.equations import materialize, normalize_item
from repro.core.selection import select_alternative_patterns
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED
from repro.engines.peregrine.engine import PeregrineEngine
from repro.morph.profiles import PEREGRINE_PROFILE


def _time_assignment(graph, skeletons, variants) -> float:
    """Wall time to count one variant assignment of the motif closure."""
    import time

    engine = PeregrineEngine()
    patterns = [
        materialize(normalize_item(skel, variant))
        for skel, variant in zip(skeletons, variants)
    ]
    start = time.perf_counter()
    engine.count_set(graph, patterns)
    return time.perf_counter() - start


def test_fig15e_cost_model_effectiveness(benchmark, mico_small):
    queries = list(motif_patterns(4))
    skeletons = [q.edge_induced() for q in queries]
    free = [i for i, s in enumerate(skeletons) if not s.is_clique]

    # The model's pick.
    cost_model = CostModel.for_graph(mico_small, PEREGRINE_PROFILE)
    selection = select_alternative_patterns(queries, cost_model)
    chosen_variants = []
    for skel in skeletons:
        if skel.is_clique:
            chosen_variants.append(EDGE_INDUCED)
            continue
        item_v = normalize_item(skel, VERTEX_INDUCED)
        chosen_variants.append(
            VERTEX_INDUCED if item_v in selection.measured else EDGE_INDUCED
        )

    def sweep():
        timings = {}
        for bits in product((EDGE_INDUCED, VERTEX_INDUCED), repeat=len(free)):
            variants = [EDGE_INDUCED] * len(skeletons)
            for idx, variant in zip(free, bits):
                variants[idx] = variant
            timings[tuple(variants)] = _time_assignment(
                mico_small, skeletons, variants
            )
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)

    best = min(timings.values())
    worst = max(timings.values())
    query_set = timings[tuple(VERTEX_INDUCED if not s.is_clique else EDGE_INDUCED for s in skeletons)]
    chosen = timings[tuple(chosen_variants)]

    benchmark.extra_info["alternative_sets"] = len(timings)
    benchmark.extra_info["best_s"] = round(best, 3)
    benchmark.extra_info["worst_s"] = round(worst, 3)
    benchmark.extra_info["query_set_s"] = round(query_set, 3)
    benchmark.extra_info["chosen_s"] = round(chosen, 3)
    benchmark.extra_info["chosen_over_best"] = round(chosen / best, 3)

    assert worst / best > 2.0, "the alternative-set space must be wide"
    assert chosen <= best * 1.5, "the model's pick must be near-optimal"
    assert chosen < query_set, "the model's pick must beat the query set"
