"""Figure 12: Motif Counting speedups and set-operation reductions.

Paper rows: 3/4/5-MC on Peregrine (12a) and AutoZero (12b), morphed vs
baseline, plus set-operation-time reductions (12c/d). The paper's shape:
morphing turns vertex-induced motif queries into edge-induced variants,
eliminating every anti-edge set difference, with speedups of 1.5-34×
(Peregrine) and 2-10× (AutoZero). Graphs here are scaled stand-ins; the
*direction* (all diffs eliminated, >1 speedups) is asserted, and the
reduced mico graph carries the 5-MC sweep.

pytest-benchmark times the morphed run; the full figure row (baseline
time, speedup, set-op reduction) lands in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.core.atlas import motif_patterns
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.peregrine.engine import PeregrineEngine

from .conftest import make_row, record_comparison, run_baseline_cached, run_morphed


def _bench(benchmark, engine_cls, graph, size, label):
    patterns = list(motif_patterns(size))
    baseline = run_baseline_cached(engine_cls, graph, patterns, label)
    morphed = benchmark.pedantic(
        lambda: run_morphed(engine_cls, graph, patterns), rounds=1, iterations=1
    )
    row = make_row(label, graph, baseline, morphed)
    record_comparison(benchmark, row)
    return row


@pytest.mark.parametrize(
    "size,graph_name",
    [(3, "mico"), (3, "mag"), (3, "products"), (4, "mico"), (4, "mag")],
)
def test_fig12a_peregrine_mc(size, graph_name, benchmark, request):
    graph = request.getfixturevalue(graph_name)
    row = _bench(benchmark, PeregrineEngine, graph, size, f"{size}-MC")
    assert row.results_equal
    assert row.speedup > 1.0, "morphing must accelerate motif counting"
    # Morphing removes every anti-edge difference (Section 7.1).
    assert row.morphed_stats.setops.differences == 0
    assert row.baseline_stats.setops.differences > 0


def test_fig12a_peregrine_5mc(benchmark, mico_small):
    """5-MC (21 motifs) on the reduced MiCo stand-in."""
    row = _bench(benchmark, PeregrineEngine, mico_small, 5, "5-MC")
    assert row.results_equal
    assert row.speedup > 1.0
    assert row.morphed_stats.setops.differences == 0


@pytest.mark.parametrize("size,graph_name", [(3, "mico"), (3, "mag"), (4, "mico")])
def test_fig12b_autozero_mc(size, graph_name, benchmark, request):
    graph = request.getfixturevalue(graph_name)
    row = _bench(benchmark, AutoZeroEngine, graph, size, f"{size}-MC")
    assert row.results_equal
    assert row.speedup > 1.0
    assert row.morphed_stats.setops.differences == 0


@pytest.mark.parametrize("size", [3, 4])
def test_fig12c_setop_reduction_peregrine(size, benchmark, mico):
    """Figure 12c: set-operation time reduction (Peregrine, MiCo-like)."""
    row = _bench(benchmark, PeregrineEngine, mico, size, f"{size}-MC")
    assert row.setop_reduction > 1.5, (
        "morphing must cut set-operation time substantially"
    )
    assert row.morphed_stats.setops.total_ops < row.baseline_stats.setops.total_ops


@pytest.mark.parametrize("size", [3, 4])
def test_fig12d_setop_reduction_autozero(size, benchmark, mico):
    """Figure 12d: set-operation time reduction (AutoZero, MiCo-like)."""
    row = _bench(benchmark, AutoZeroEngine, mico, size, f"{size}-MC")
    assert row.setop_reduction > 1.5
