#!/usr/bin/env python
"""Calibrate per-engine cost-model constants from stored cost audits.

The abstract cost model prices work in engine-relative *cost units*;
:class:`repro.EngineCostProfile.unit_seconds` converts those units to
wall seconds (ETAs, the planner's python-op pricing, cross-engine
comparisons). Within-engine rankings — everything Algorithm 1 and the
rewrite planner decide — are scale-invariant in it, so calibration can
never change a plan's shape, only its clock predictions.

This tool fits ``unit_seconds`` per engine by least squares through the
origin over stored :class:`repro.CostAuditRecord` streams::

    k = argmin_k sum_i (t_i - k * c_i)^2  =  sum(c*t) / sum(c^2)

where ``c`` is an item's predicted cost units and ``t`` its measured
match seconds. Cached items and the per-run selection summary are
skipped — they carry no fresh measurement.

Inputs are JSONL traces as written by ``repro.run(..., trace=path)``
(the engine name is read from each trace's ``run`` span). With no
trace arguments, ``--run-suite`` measures a fresh calibration workload
across all five engines in-process and fits from that.

The report also recomputes :func:`repro.observe.rank_agreement` per
engine and flags *degenerate* workloads — runs whose audits yield no
comparable pairs (every item tied on predicted cost, or fewer than two
measured items), which previously scored a meaningless 0.0/1.0 or
poisoned trend gates. Those runs are excluded from the fit and listed
so the workload, not the model, gets fixed.

Usage::

    PYTHONPATH=src python tools/calibrate_costmodel.py trace1.jsonl ...
    PYTHONPATH=src python tools/calibrate_costmodel.py --run-suite
    PYTHONPATH=src python tools/calibrate_costmodel.py --run-suite --json out.json

The fitted constants are meant to be fed back into
``src/repro/morph/profiles.py`` (each profile's ``unit_seconds=``);
the shipped defaults were produced by ``--run-suite`` on the benchmark
generator graphs.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass


@dataclass(frozen=True)
class EngineFit:
    """One engine's calibration: the fit plus its quality evidence."""

    engine: str
    unit_seconds: float
    records: int
    r_squared: float
    rank_agreement: float | None
    degenerate_runs: int

    def row(self, current: float) -> str:
        ra = "n/a" if self.rank_agreement is None else f"{self.rank_agreement:.2f}"
        drift = self.unit_seconds / current if current else float("inf")
        return (
            f"{self.engine:<10} {self.unit_seconds:>12.3e} {current:>12.3e} "
            f"{drift:>7.2f}x {self.records:>5} {self.r_squared:>6.3f} "
            f"{ra:>6} {self.degenerate_runs:>5}"
        )


def usable_audits(audits):
    """Audit records that carry a fresh per-item measurement."""
    return [
        r
        for r in audits
        if r.role in ("alternative", "query")
        and not r.cached
        and r.predicted_cost > 0
        and r.measured_seconds > 0
    ]


def fit_unit_seconds(audits) -> tuple[float, float]:
    """Least-squares-through-origin ``(unit_seconds, r_squared)``.

    ``r_squared`` is computed against the through-origin model (sum of
    squares about zero, the standard uncentered form), so a perfectly
    proportional predictor scores 1.0 regardless of scale.
    """
    num = sum(r.predicted_cost * r.measured_seconds for r in audits)
    den = sum(r.predicted_cost**2 for r in audits)
    if den <= 0:
        return 0.0, 0.0
    k = num / den
    ss_res = sum((r.measured_seconds - k * r.predicted_cost) ** 2 for r in audits)
    ss_tot = sum(r.measured_seconds**2 for r in audits)
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return k, r2


def calibrate(runs) -> list[EngineFit]:
    """Fit every engine appearing in ``runs`` — ``(engine, audits)`` pairs.

    A run whose usable audits produce no rank verdict (fewer than two
    comparable pairs — see :func:`repro.observe.rank_agreement`) is
    counted as degenerate and left out of that engine's fit.
    """
    from repro.observe.audit import rank_agreement

    by_engine: dict[str, list] = {}
    degenerate: dict[str, int] = {}
    for engine, audits in runs:
        usable = usable_audits(audits)
        if rank_agreement(usable) is None:
            degenerate[engine] = degenerate.get(engine, 0) + 1
            continue
        by_engine.setdefault(engine, []).extend(usable)
    fits = []
    for engine in sorted(set(by_engine) | set(degenerate)):
        audits = by_engine.get(engine, [])
        k, r2 = fit_unit_seconds(audits) if audits else (0.0, 0.0)
        fits.append(
            EngineFit(
                engine=engine,
                unit_seconds=k,
                records=len(audits),
                r_squared=r2,
                rank_agreement=rank_agreement(audits) if audits else None,
                degenerate_runs=degenerate.get(engine, 0),
            )
        )
    return fits


def load_runs(paths):
    """``(engine, audits)`` per stored JSONL trace (engine from run span)."""
    from repro.observe import load_trace

    runs = []
    for path in paths:
        trace = load_trace(path)
        engine = "unknown"
        for span in trace.find("run"):
            engine = str(span.attributes.get("engine", engine))
        runs.append((engine, trace.audits))
    return runs


def run_suite(repeats: int = 3):
    """Measure a fresh calibration workload on every engine, in-process.

    The workload mixes pattern sizes (all 4-vertex motifs plus the
    5-star) so predicted costs spread across an order of magnitude —
    tied predictions are exactly what makes a run degenerate. Each
    engine runs ``repeats`` times; every traced run is one fit sample.
    """
    import repro
    from repro.core.atlas import FIVE_STAR, motif_patterns
    from repro.graph.generators import power_law_cluster

    graph = power_law_cluster(220, 4, 0.4, seed=17)
    patterns = list(motif_patterns(4)) + [FIVE_STAR]
    runs = []
    for engine in sorted(repro.ENGINES):
        for _ in range(repeats):
            tracer = repro.Tracer()
            repro.run(graph, patterns, engine, trace=tracer)
            runs.append((engine, list(tracer.audits)))
    return runs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="*", help="stored JSONL trace files")
    parser.add_argument(
        "--run-suite",
        action="store_true",
        help="measure a fresh calibration suite across all engines",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="suite runs per engine"
    )
    parser.add_argument("--json", help="also dump the fits as JSON")
    args = parser.parse_args(argv)
    if not args.traces and not args.run_suite:
        parser.error("give stored trace files, or --run-suite to measure one")

    runs = load_runs(args.traces)
    if args.run_suite:
        runs.extend(run_suite(args.repeats))
    fits = calibrate(runs)
    if not fits:
        print("no cost audits found in the given traces", file=sys.stderr)
        return 1

    from repro.morph.profiles import profile_for

    print(
        f"{'engine':<10} {'fitted_s/unit':>12} {'current':>12} "
        f"{'drift':>8} {'n':>5} {'r^2':>6} {'rank':>6} {'degen':>5}"
    )
    for fit in fits:
        print(fit.row(profile_for(fit.engine).unit_seconds))
    total_degen = sum(f.degenerate_runs for f in fits)
    if total_degen:
        print(
            f"note: {total_degen} degenerate run(s) excluded from the fit "
            "(no comparable predicted-cost pairs — widen the workload's "
            "pattern mix)"
        )
    print(
        "feed fitted values into src/repro/morph/profiles.py "
        "(EngineCostProfile unit_seconds=)"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    f.engine: {
                        "unit_seconds": f.unit_seconds,
                        "records": f.records,
                        "r_squared": f.r_squared,
                        "rank_agreement": f.rank_agreement,
                        "degenerate_runs": f.degenerate_runs,
                    }
                    for f in fits
                },
                fh,
                indent=2,
            )
            fh.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
