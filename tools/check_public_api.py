#!/usr/bin/env python
"""Lint the ``repro`` public API surface (CI gate).

Fails (exit 1) when a facade's export contract is violated, for each
linted module (the top-level ``repro`` package, the ``repro.bench``
subsystem whose record/compare surface other tooling scripts against,
``repro.plan``, and the ``repro.serve`` service facade):

* a name in ``__all__`` does not exist on the module;
* a public symbol (non-underscore class/function defined somewhere in
  ``repro.*`` and re-exported on the module) is missing from ``__all__``
  — the "new public symbol without an ``__all__`` entry" case;
* an exported class or function lacks a docstring.

Run locally with ``PYTHONPATH=src python tools/check_public_api.py``.
"""

from __future__ import annotations

import sys


def lint_module(module) -> list[str]:
    """Export-contract violations for one module with an ``__all__``."""
    name = module.__name__
    failures: list[str] = []
    exported = set(module.__all__)

    for symbol in sorted(exported):
        if not hasattr(module, symbol):
            failures.append(
                f"{name}.__all__ lists {symbol!r} but {name} has no such attribute"
            )

    dupes = len(module.__all__) - len(exported)
    if dupes:
        failures.append(
            f"{name}.__all__ contains {dupes} duplicate "
            f"entr{'y' if dupes == 1 else 'ies'}"
        )

    for symbol in sorted(set(vars(module)) - exported):
        if symbol.startswith("_") or symbol in ("annotations",):
            continue
        obj = getattr(module, symbol)
        if not callable(obj):
            continue  # data constants and submodules may stay unexported
        if getattr(obj, "__module__", "").startswith("repro"):
            failures.append(
                f"public symbol {name}.{symbol} is importable but missing from "
                f"__all__ (add it, or prefix the import with an underscore)"
            )

    for symbol in sorted(exported & set(vars(module))):
        obj = getattr(module, symbol)
        if not callable(obj):
            continue
        if not (getattr(obj, "__doc__", None) or "").strip():
            failures.append(f"exported symbol {name}.{symbol} has no docstring")

    return failures


def main() -> int:
    import repro
    import repro.bench
    import repro.plan
    import repro.serve

    failures: list[str] = []
    modules = (repro, repro.bench, repro.plan, repro.serve)
    for module in modules:
        failures.extend(lint_module(module))

    if failures:
        print("public API lint failed:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    total = sum(len(set(m.__all__)) for m in modules)
    print(
        f"public API ok: {total} exported names across "
        f"{', '.join(m.__name__ for m in modules)}, all present and documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
