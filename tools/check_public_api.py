#!/usr/bin/env python
"""Lint the ``repro`` public API surface (CI gate).

Fails (exit 1) when the facade's export contract is violated:

* a name in ``repro.__all__`` does not exist on the package;
* a public symbol (non-underscore class/function defined somewhere in
  ``repro.*`` and re-exported at top level) is missing from ``__all__``
  — the "new public symbol without an ``__all__`` entry" case;
* an exported class or function lacks a docstring.

Run locally with ``PYTHONPATH=src python tools/check_public_api.py``.
"""

from __future__ import annotations

import sys


def main() -> int:
    import repro

    failures: list[str] = []
    exported = set(repro.__all__)

    for name in sorted(exported):
        if not hasattr(repro, name):
            failures.append(f"__all__ lists {name!r} but repro has no such attribute")

    dupes = len(repro.__all__) - len(exported)
    if dupes:
        failures.append(f"__all__ contains {dupes} duplicate entr{'y' if dupes == 1 else 'ies'}")

    for name in sorted(set(vars(repro)) - exported):
        if name.startswith("_") or name in ("annotations",):
            continue
        obj = getattr(repro, name)
        if not callable(obj):
            continue  # data constants and submodules may stay unexported
        if getattr(obj, "__module__", "").startswith("repro"):
            failures.append(
                f"public symbol repro.{name} is importable but missing from "
                f"__all__ (add it, or prefix the import with an underscore)"
            )

    for name in sorted(exported & set(vars(repro))):
        obj = getattr(repro, name)
        if not callable(obj):
            continue
        if not (getattr(obj, "__doc__", None) or "").strip():
            failures.append(f"exported symbol repro.{name} has no docstring")

    if failures:
        print("public API lint failed:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"public API ok: {len(exported)} exported names, all present and documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
