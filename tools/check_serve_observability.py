#!/usr/bin/env python
"""CI gate: the daemon's observability surface, end to end.

Boots ``repro serve`` as a real subprocess with an aggressive
``--slow-factor`` (so real queries trip the cost-model slowness
classifier), drives 20 mixed queries over the socket — two engines,
several patterns, cache-bypassing repeats, warm cache hits and one
guaranteed failure — then asserts the whole observability contract:

* every response (success, cached, failed) carries a unique ``query_id``;
* the ``stats`` snapshot passes :func:`repro.serve.validate_stats` and
  its latency/stage histograms actually accumulated the traffic;
* the queue window reports samples (the background depth sampler ran);
* the flight recorder retained slow queries *and* the failed query;
* the ``dump`` op writes loadable trace JSONL + Chrome JSON whose spans
  carry the originating ``query_id`` (worker spans included);
* ``repro top --once`` renders a frame against the live daemon.

The dump directory is left behind for the CI job to upload as an
artifact. Exit code is non-zero on the first broken claim.

Usage: python tools/check_serve_observability.py [--dump-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dump-dir",
        default="serve-observability-traces",
        help="where to dump flight-recorder traces (uploaded as artifact)",
    )
    parser.add_argument(
        "--queries", type=int, default=20, help="mixed queries to drive"
    )
    args = parser.parse_args()

    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--graphs",
            "mico",
            "--serve-workers",
            "2",
            "--slow-factor",
            "1e-9",
            "--dump-dir",
            args.dump_dir,
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        port = int(proc.stdout.readline())
        import repro
        from repro.observe import load_trace
        from repro.serve import connect, validate_stats

        client = repro.connect(port=port, client_id="ci-observability")

        patterns = [
            repro.Pattern.clique(3),
            repro.Pattern.path(3),
            repro.Pattern.star(3),
        ]
        engines = ("peregrine", "graphpi")
        ids: list[str] = []
        ok = cached = failed = 0
        for i in range(args.queries):
            pattern = patterns[i % len(patterns)]
            engine = engines[i % len(engines)]
            # Every 5th query repeats the previous request verbatim so
            # the result cache serves it; every 7th bypasses the cache.
            use_cache = i % 7 != 0
            out = client.run(
                "mico",
                [pattern],
                options=repro.RunOptions(engine=engine),
                use_result_cache=use_cache,
            )
            assert out.query_id, f"query {i} came back without a query_id"
            ids.append(out.query_id)
            ok += 1
            cached += bool(out.cached)
        assert len(set(ids)) == len(ids), "query_ids are not unique"
        print(f"drove {ok} queries ({cached} cache hits), ids all unique")

        # One guaranteed failure: a graph the daemon does not have.
        try:
            client.run("no-such-graph", [patterns[0]])
        except Exception as exc:
            failed += 1
            print(f"expected failure recorded: {type(exc).__name__}")
        assert failed == 1, "the bad-graph query should have failed"

        stats = validate_stats(client.stats())
        total = stats["histograms"]["serve.latency.total"]
        assert total["count"] >= args.queries, total
        assert 0 < total["p50"] <= total["p99"] <= total["max"], total
        for engine in engines:
            name = f"serve.stage.match.{engine}"
            assert name in stats["histograms"], f"missing histogram {name}"
        assert stats["queue"]["samples"] > 0, stats["queue"]
        assert stats["uptime_seconds"] > 0, stats
        flight = stats["flight"]
        # slow_factor=1e-9 makes every mined (non-cached) query "slow".
        assert flight["anomalies"] > 0, flight
        anomalies = flight["recent_anomalies"]
        assert any(a.get("slow") for a in anomalies), anomalies
        assert any(a.get("status") == "error" for a in anomalies), anomalies
        hits = stats["metrics"].get("serve.result_cache.hits", 0)
        assert hits == cached, (hits, cached)
        print(
            f"stats schema v{stats['schema_version']} valid: "
            f"p50={total['p50']:.4f}s p99={total['p99']:.4f}s "
            f"{flight['anomalies']} anomalies ({len(anomalies)} described)"
        )

        dump = client.dump(args.dump_dir)
        files = [Path(f) for f in dump["files"]]
        assert files, "dump wrote no files"
        index = json.loads(
            (Path(dump["dir"]) / "index.json").read_text(encoding="utf-8")
        )
        traced = [r for r in index["records"] if r["has_trace"]]
        assert traced, "no retained record carried a trace"
        slow_traced = [r for r in traced if r.get("slow")]
        assert slow_traced, "no slow query retained a trace"
        sample = Path(dump["dir"]) / f"{slow_traced[0]['query_id']}.trace.jsonl"
        trace = load_trace(sample)
        trace.validate_nesting()
        assert all(
            span.attributes.get("query_id") == slow_traced[0]["query_id"]
            for span in trace.spans
        ), "spans lost their query_id tag"
        chrome_path = (
            Path(dump["dir"]) / f"{slow_traced[0]['query_id']}.chrome.json"
        )
        chrome = json.loads(chrome_path.read_text(encoding="utf-8"))
        assert chrome["traceEvents"], "empty chrome trace"
        print(
            f"dumped {len(files)} files to {dump['dir']}; "
            f"slow trace {sample.name} nests and tags correctly"
        )

        top = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "top",
                str(port),
                "--once",
                "--client",
                "ci-top",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert top.returncode == 0, top.stderr
        assert "repro top" in top.stdout and "latency:" in top.stdout, (
            top.stdout
        )
        print("repro top --once rendered a frame:")
        print(top.stdout)

        client.shutdown()
        proc.wait(timeout=30)
        from repro.engines.execution import assert_no_leaked_segments

        assert_no_leaked_segments()
        print("serve observability gate: all claims hold")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
