#!/usr/bin/env python
"""CI gate: the hardened daemon survives a chaos storm, end to end.

Boots ``repro serve`` as a real subprocess in chaos mode (a seeded
:class:`~repro.testing.faults.QueryFaultPlan` injecting worker crashes,
hangs, slow responses, corrupted frames and torn sockets), then:

1. drives a burst of mixed queries with a resilient client (seeded
   backoff, idempotency keys) and asserts every *completed* answer is
   identical to the in-process ``repro.run`` oracle — chaos may slow
   queries down or degrade them to partials, but it must never corrupt
   a completed answer;
2. renders ``repro top --once`` against the live daemon (the breaker /
   shed / sentinel panel must not crash mid-storm);
3. sends SIGTERM mid-burst and asserts a clean graceful drain: the
   process exits 0 within the drain deadline, the ``--state`` journal
   is written for warm restart, and the flight recorder is dumped;
4. warm-restarts a second daemon from the journal and asserts a cached
   query replays the pre-restart answer;
5. asserts zero shared-memory segments leaked across both incarnations
   (the stale-segment sweep finds nothing to reclaim).

The flight dump directory is left behind for the CI job to upload as
an artifact. Exit code is non-zero on the first broken claim.

Usage: python tools/check_serve_chaos.py [--dump-dir DIR] [--seed N]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path


def boot(extra: list[str]) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--graphs",
            "mico",
            "--serve-workers",
            "2",
            *extra,
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    port = int(proc.stdout.readline())
    return proc, port


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dump-dir",
        default="serve-chaos-traces",
        help="where the drain dumps flight traces (uploaded as artifact)",
    )
    parser.add_argument("--seed", type=int, default=13, help="chaos seed")
    parser.add_argument(
        "--queries", type=int, default=12, help="first-burst query count"
    )
    args = parser.parse_args()

    import repro
    from repro.engines.execution import sweep_stale_segments
    from repro.serve import Client, ServeRejected, connect

    # Start from a clean shared-memory namespace so the zero-leak claim
    # at the end is about *this* run, not a predecessor's corpses.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        pre = sweep_stale_segments()
    if pre:
        print(f"note: swept {len(pre)} stale segments from earlier runs")

    patterns = [repro.Pattern.clique(3), repro.Pattern.path(3)]
    from repro.graph.datasets import load

    graph = load("mico")
    oracle = {p: repro.run(graph, [p]).results[p] for p in patterns}
    print(f"oracle: {[oracle[p] for p in patterns]}")

    state_path = Path(args.dump_dir) / "service-state.jsonl"
    state_path.parent.mkdir(parents=True, exist_ok=True)
    proc, port = boot(
        [
            "--chaos-seed",
            str(args.seed),
            "--chaos-p",
            "0.5",
            "--chaos-queries",
            "64",
            "--wall-budget",
            "1.0",
            "--breaker-threshold",
            "100",  # the breaker suites live in pytest; here it must not gate
            "--drain-deadline",
            "10",
            "--state",
            str(state_path),
            "--dump-dir",
            args.dump_dir,
        ]
    )
    try:
        client = connect(
            port,
            client_id="chaos-gate",
            timeout=60.0,
            retry=repro.RetryPolicy(
                max_retries=4, backoff_seconds=0.02, jitter=0.25, seed=args.seed
            ),
        )

        # -- burst 1: every completed answer must equal the oracle ------
        completed = partial = 0
        for index in range(args.queries):
            pattern = patterns[index % len(patterns)]
            result = client.run(
                "mico", [pattern], chaos_index=index, use_result_cache=False
            )
            if result.partial:
                partial += 1
                assert result.sentinel == "wall-budget", result
                continue
            completed += 1
            assert result.results[pattern] == oracle[pattern], (
                f"query {index} diverged: "
                f"{result.results[pattern]} != {oracle[pattern]}"
            )
        assert completed > 0, "chaos storm completed nothing"
        stats = client.stats()
        replays = stats["metrics"].get("serve.idempotent.replays", 0)
        print(
            f"burst 1: {completed} completed (all == oracle), "
            f"{partial} reaped by sentinels, {replays} idempotent replays"
        )

        # -- live dashboard renders the robustness panel mid-storm ------
        top = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "top",
                str(port),
                "--once",
                "--client",
                "chaos-top",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert top.returncode == 0, top.stderr
        assert "service: accepting" in top.stdout, top.stdout
        print("repro top renders mid-storm (service: accepting)")

        # One cacheable query (no chaos index) so the drain journal has
        # a result entry for the warm-restart leg to replay.
        warm = client.run("mico", [patterns[0]])
        assert warm.results[patterns[0]] == oracle[patterns[0]]

        # -- burst 2 + SIGTERM mid-burst: graceful drain ----------------
        outcomes: list[str] = []
        lock = threading.Lock()

        def late_client(index: int) -> None:
            try:
                late = Client(port=port, client_id=f"late-{index}", timeout=60.0)
                result = late.run(
                    "mico",
                    [patterns[index % len(patterns)]],
                    use_result_cache=False,
                )
                verdict = (
                    "completed"
                    if result.results[patterns[index % len(patterns)]]
                    == oracle[patterns[index % len(patterns)]]
                    else "DIVERGED"
                )
            except ServeRejected as exc:
                verdict = exc.verdict  # rejected:draining expected
            except Exception as exc:  # noqa: BLE001 - categorised below
                verdict = f"transport:{type(exc).__name__}"
            with lock:
                outcomes.append(verdict)

        threads = [
            threading.Thread(target=late_client, args=(i,)) for i in range(6)
        ]
        for thread in threads[:3]:
            thread.start()
        time.sleep(0.05)  # let a few land in the queue / on workers
        proc.send_signal(signal.SIGTERM)
        for thread in threads[3:]:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        proc.wait(timeout=60)
        assert proc.returncode == 0, f"daemon exited {proc.returncode}"
        assert "DIVERGED" not in outcomes, outcomes
        print(f"SIGTERM mid-burst: clean exit 0; late clients: {outcomes}")

        # -- drain artifacts: state journal + flight dump ---------------
        assert state_path.exists(), "drain did not persist --state journal"
        dump_files = list(Path(args.dump_dir).glob("*.json*"))
        assert dump_files, f"drain dumped no flight files in {args.dump_dir}"
        print(
            f"drain artifacts: {state_path.name} + "
            f"{len(dump_files)} flight files"
        )

        # -- warm restart from the journal ------------------------------
        proc2, port2 = boot(["--resume", str(state_path)])
        try:
            client2 = connect(port2, client_id="chaos-resume")
            result = client2.run("mico", [patterns[0]])
            assert result.cached, "warm restart did not replay from journal"
            assert result.results[patterns[0]] == oracle[patterns[0]]
            print("warm restart: journaled answer replayed from cache")
            client2.shutdown()
            proc2.wait(timeout=60)
        finally:
            if proc2.poll() is None:
                proc2.kill()

        # -- zero leaks across both incarnations ------------------------
        leaked = sweep_stale_segments()
        assert not leaked, f"daemon leaked shared-memory segments: {leaked}"
        print("zero leaked shared-memory segments")
        print("serve chaos gate: all claims hold")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
