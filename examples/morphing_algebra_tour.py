#!/usr/bin/env python3
"""A tour of the Subgraph Morphing algebra (Sections 4-6).

Walks through the machinery on small examples, printing at each step what
the paper's figures show: the morphing equations of Figure 7, the S-DAG
of Figure 8, Algorithm 1's selection, and the Appendix A.2 conversion
arithmetic verified on a real (tiny) data graph.

Run:  python examples/morphing_algebra_tour.py
"""

from __future__ import annotations

from repro import (
    CostModel,
    MorphingSession,
    PeregrineEngine,
    SDag,
    morph_equation,
    motif_patterns,
    pattern_name,
    select_alternative_patterns,
    solve_query,
)
from repro.core.atlas import FOUR_CYCLE, TAILED_TRIANGLE
from repro.core.equations import evaluate, item_of, materialize, normalize_item
from repro.core.generation import skeleton, superpattern_closure
from repro.graph.generators import power_law_cluster
from repro.morph.profiles import PEREGRINE_PROFILE


def main() -> None:
    print("== Figure 7: morphing equations ==")
    print(" ", morph_equation(TAILED_TRIANGLE))
    print(" ", morph_equation(FOUR_CYCLE))
    print(" ", morph_equation(FOUR_CYCLE.vertex_induced()))

    print("\n== Figure 8: the S-DAG over the 4-vertex motifs ==")
    dag = SDag.build(list(motif_patterns(4)))
    for node in sorted(dag, key=lambda n: n.skel.num_edges):
        parents = ", ".join(
            pattern_name(dag.node_by_id(p).skel) for p in node.parents
        ) or "-"
        print(
            f"  {pattern_name(node.skel):4s} ({node.skel.num_edges} edges) "
            f"-> superpatterns: {parents}"
        )

    graph = power_law_cluster(200, 5, 0.5, seed=2, name="demo")
    print(f"\n== Algorithm 1 on {graph} ==")
    cost_model = CostModel.for_graph(graph, PEREGRINE_PROFILE)
    selection = select_alternative_patterns(list(motif_patterns(4)), cost_model)
    print(
        "  query set (all vertex-induced) estimated cost:"
        f" {selection.estimated_query_cost:,.0f}"
    )
    print(f"  selected set estimated cost: {selection.estimated_cost:,.0f}")
    print(
        "  measured:",
        ", ".join(
            f"{pattern_name(s)}^{v}" for s, v in sorted(selection.measured, key=repr)
        ),
    )

    print("\n== Appendix A.2: conversion arithmetic on a real graph ==")
    query = FOUR_CYCLE.vertex_induced()
    engine = PeregrineEngine()
    measured_values = {}
    for sup in superpattern_closure(skeleton(query)):
        item = normalize_item(sup, "E")
        measured_values[item] = engine.count(graph, materialize(item))
        print(f"  count({pattern_name(sup)}^E) = {measured_values[item]:,}")
    expression = solve_query(item_of(query), set(measured_values))
    terms = " + ".join(
        f"{coeff}*{pattern_name(s)}^{v}" for (s, v), coeff in expression.items()
    )
    derived = evaluate(expression, measured_values)
    direct = engine.count(graph, query)
    print(f"  countV(C4) = {terms} = {derived:,}")
    print(f"  direct vertex-induced count  = {direct:,}")
    assert derived == direct

    print("\n== End-to-end session ==")
    session = MorphingSession(PeregrineEngine(), enabled=True)
    result = session.run(graph, [query, TAILED_TRIANGLE])
    for q, count in result.results.items():
        print(f"  {pattern_name(q):6s} -> {count:,}")


if __name__ == "__main__":
    main()
