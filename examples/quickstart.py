#!/usr/bin/env python3
"""Quickstart: count motifs with and without Subgraph Morphing.

Runs 4-motif counting on the MiCo stand-in graph twice — baseline and
morphed — prints the per-motif census, the alternative pattern set the
paper's Algorithm 1 selected, and the speedup. Mirrors the paper's
Figure 12 experiment at laptop scale.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MorphingSession, PeregrineEngine, motif_patterns, pattern_name
from repro.graph import datasets


def main() -> None:
    graph = datasets.mico()
    print(f"Data graph: {graph}")
    queries = list(motif_patterns(4))
    print(f"Queries: all {len(queries)} vertex-induced 4-vertex motifs\n")

    baseline = MorphingSession(PeregrineEngine(), enabled=False).run(graph, queries)
    morphed = MorphingSession(PeregrineEngine(), enabled=True).run(graph, queries)

    assert baseline.results == morphed.results, "morphing must be exact"

    print(f"{'motif':8s} {'count':>10s}")
    for pattern in queries:
        print(f"{pattern_name(pattern):8s} {morphed.results[pattern]:>10d}")

    print("\nAlternative pattern set selected by Algorithm 1:")
    for skeleton, variant in sorted(morphed.measured, key=repr):
        kind = "edge-induced" if variant == "E" else "vertex-induced"
        print(f"  {pattern_name(skeleton):8s} ({kind})")

    speedup = baseline.total_seconds / morphed.total_seconds
    print(
        f"\nbaseline: {baseline.total_seconds:6.2f}s "
        f"({baseline.stats.setops.total_ops} set ops, "
        f"{baseline.stats.setops.differences} differences)"
    )
    print(
        f"morphed:  {morphed.total_seconds:6.2f}s "
        f"({morphed.stats.setops.total_ops} set ops, "
        f"{morphed.stats.setops.differences} differences)"
    )
    print(f"speedup:  {speedup:6.2f}x — results identical")


if __name__ == "__main__":
    main()
