#!/usr/bin/env python3
"""Streaming enumeration with on-the-fly conversion (Section 7.3).

Enumerates every edge-induced 4-vertex subgraph whose average vertex
weight falls within one standard deviation of the mean (the paper's §7.3
filter). With morphing enabled, the engine matches vertex-induced
alternatives — each data subgraph appears exactly once — the filter runs
once per alternative match, and passing matches are converted to the
query patterns on the fly (Algorithm 3).

Run:  python examples/streaming_enumeration.py
"""

from __future__ import annotations

from repro import MorphingSession, PeregrineEngine, all_connected_patterns, pattern_name
from repro.apps.enumeration import weight_window_filter
from repro.graph import datasets
from repro.graph.generators import random_weights


def main() -> None:
    graph = datasets.mico()
    weights = random_weights(graph, seed=7)
    accept = weight_window_filter(weights, num_std=1.0)
    queries = list(all_connected_patterns(4))
    print(f"Data graph: {graph}")
    print("Queries: all 6 edge-induced 4-vertex patterns, 1-sigma weight filter\n")

    def run(enabled: bool):
        emitted: dict = {}

        def process(pattern, match):
            emitted[pattern] = emitted.get(pattern, 0) + 1

        session = MorphingSession(PeregrineEngine(), enabled=enabled, margin=1.0)
        result = session.run_streaming(
            graph, queries, process, vertex_filter=accept
        )
        return result, emitted

    baseline, base_counts = run(enabled=False)
    morphed, morph_counts = run(enabled=True)
    assert base_counts == morph_counts, "streams must be identical"

    print(f"{'pattern':6s} {'passing matches':>16s}")
    for q in queries:
        print(f"{pattern_name(q):6s} {morph_counts.get(q, 0):>16,}")

    print(
        f"\nbaseline: {baseline.total_seconds:6.2f}s, "
        f"{baseline.stats.udf_calls:,} filter evaluations"
    )
    print(
        f"morphed:  {morphed.total_seconds:6.2f}s, "
        f"{morphed.stats.udf_calls:,} filter evaluations"
    )
    if morphed.selection and any(morphed.selection.morphed.values()):
        print(
            "morphing evaluated the filter once per unique subgraph "
            "instead of once per (pattern, match) pair"
        )
    else:
        print(
            "the profiled filter was cheap enough that the cost model "
            "kept the original query set (no morph)"
        )


if __name__ == "__main__":
    main()
