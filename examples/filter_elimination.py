#!/usr/bin/env python3
"""Eliminating Filter UDFs on edge-induced-only systems (Figure 14).

GraphPi- and BigJoin-style systems cannot express anti-edges; counting a
vertex-induced pattern means matching its edge-induced skeleton and
rejecting, per match, any subgraph with an edge across an anti-edge pair.
Those per-match probes are data-dependent branches — the dominant cost
the paper measures in Figures 4d/4e and 14c/14d.

Subgraph Morphing computes the vertex-induced count as an integer
combination of edge-induced superpattern counts (Eq. 1 rearranged), with
zero filter invocations. This example shows the morph equation used, the
branch counters before/after, and the speedup.

Run:  python examples/filter_elimination.py
"""

from __future__ import annotations

from repro import (
    BigJoinEngine,
    GraphPiEngine,
    MorphingSession,
    morph_equation,
    pattern_name,
)
from repro.core.atlas import FOUR_STAR, TAILED_TRIANGLE
from repro.graph import datasets


def main() -> None:
    graph = datasets.mico()
    queries = [TAILED_TRIANGLE.vertex_induced(), FOUR_STAR.vertex_induced()]
    print(f"Data graph: {graph}")
    print("Queries (vertex-induced):", ", ".join(pattern_name(q) for q in queries))
    print("\nMorphing equations (Eq. 1, [SM-V1] direction):")
    for q in queries:
        print("  " + morph_equation(q))
    print()

    for engine_cls in (GraphPiEngine, BigJoinEngine):
        baseline = MorphingSession(engine_cls(), enabled=False).run(graph, queries)
        morphed = MorphingSession(engine_cls(), enabled=True).run(graph, queries)
        assert baseline.results == morphed.results

        b, m = baseline.stats, morphed.stats
        speedup = baseline.total_seconds / morphed.total_seconds
        print(f"{engine_cls.name}:")
        print(
            f"  baseline: {baseline.total_seconds:6.2f}s  "
            f"filter calls={b.filter_calls:,}  branches={b.branches:,}  "
            f"branch misses={b.branch_misses:,}"
        )
        print(
            f"  morphed:  {morphed.total_seconds:6.2f}s  "
            f"filter calls={m.filter_calls:,}  branches={m.branches:,}  "
            f"branch misses={m.branch_misses:,}"
        )
        print(f"  speedup:  {speedup:6.2f}x — results identical")
        for q in queries:
            print(f"    {pattern_name(q):6s} count = {morphed.results[q]:,}")
        print()


if __name__ == "__main__":
    main()
