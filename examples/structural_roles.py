#!/usr/bin/env python3
"""Structural role analysis with graphlet orbit counting.

Computes per-vertex graphlet degree vectors (orbit counts) on the MAG
stand-in and uses them the way bioinformatics pipelines do: find the
vertices whose structural role most resembles a chosen hub, and compare
hub/leaf signatures. Orbit counting is the refinement of motif counting
the paper's related work ([22], [42], [43]) studies; it is built here
directly on the library's motif, automorphism-orbit and engine
primitives.

Run:  python examples/structural_roles.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.orbit_counting import (
    most_similar_vertices,
    orbit_degree_vectors,
)
from repro.graph import datasets


def main() -> None:
    graph = datasets.mag()
    print(f"Data graph: {graph}\n")

    matrix, index = orbit_degree_vectors(graph, size=3)
    print(f"{index.num_orbits} orbits across the size-3 motifs:")
    for o, name in enumerate(index.names):
        print(f"  {name:14s} total incidences: {int(matrix[:, o].sum()):,}")

    hub = int(np.argmax(graph.degrees))
    leaf = int(np.argmin(graph.degrees))
    print(f"\nhub vertex {hub} (degree {graph.degree(hub)}): "
          f"orbit vector {matrix[hub].tolist()}")
    print(f"leaf vertex {leaf} (degree {graph.degree(leaf)}): "
          f"orbit vector {matrix[leaf].tolist()}")

    print(f"\nvertices most structurally similar to hub {hub}:")
    for v, similarity in most_similar_vertices(graph, hub, size=3, top=5):
        print(f"  vertex {v:5d} (degree {graph.degree(v):3d}) "
              f"cosine similarity {similarity:.4f}")

    # Sanity identity: every size-3 occurrence contributes 3 incidences.
    from repro.apps.motif_counting import count_motifs

    total = sum(count_motifs(graph, 3, morph=False).results.values())
    assert matrix.sum() == 3 * total
    print(f"\nconsistency: {total:,} size-3 subgraphs x 3 roles "
          f"= {int(matrix.sum()):,} incidences")


if __name__ == "__main__":
    main()
