#!/usr/bin/env python3
"""Network-motif analysis (Milo et al.): significance against a null model.

The paper's introduction motivates graph mining with network-motif
analysis [44]: find the small subgraphs that occur far more often than
chance. This example runs the full pipeline on two graphs — a clustered
co-authorship-like graph and an Erdős–Rényi control — counting motifs
through the morphing-enabled stack and comparing against
degree-preserving rewired null models.

Run:  python examples/network_motifs.py
"""

from __future__ import annotations

from repro.apps.motif_significance import motif_significance
from repro.graph.generators import erdos_renyi, power_law_cluster


def report(name: str, results) -> None:
    print(f"{name}:")
    print(f"  {'motif':10s} {'observed':>9s} {'null mean':>10s} {'null std':>9s} {'z':>8s}")
    for r in results:
        z = f"{r.z_score:8.2f}" if abs(r.z_score) != float("inf") else "     inf"
        print(
            f"  {r.name:10s} {r.observed:>9,} {r.null_mean:>10.1f} "
            f"{r.null_std:>9.2f} {z}"
        )
    print()


def main() -> None:
    clustered = power_law_cluster(200, 4, 0.75, seed=5, name="co-authorship")
    control = erdos_renyi(200, clustered.avg_degree / 199, seed=6, name="ER-control")

    print("Null model: degree-preserving double-edge swaps, 8 samples\n")
    report(
        f"{clustered.name} ({clustered.num_edges} edges)",
        motif_significance(clustered, size=3, null_samples=8, seed=1),
    )
    report(
        f"{control.name} ({control.num_edges} edges)",
        motif_significance(control, size=3, null_samples=8, seed=1),
    )
    print(
        "The clustered graph's triangle z-score is large (a genuine motif);\n"
        "the ER control is statistically indistinguishable from its null."
    )


if __name__ == "__main__":
    main()
