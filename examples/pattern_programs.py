#!/usr/bin/env python3
"""The pattern-based programming model (Peregrine-style fluent API).

The paper's systems pair matching engines with high-level programming
frameworks: applications declare patterns and operate on their matches.
This example writes three small applications with the fluent
:class:`~repro.apps.programs.PatternProgram` API — morphing applies
underneath without the application code knowing.

Run:  python examples/pattern_programs.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.programs import PatternProgram
from repro.core.atlas import FOUR_CLIQUE, FOUR_STAR, TAILED_TRIANGLE, TRIANGLE
from repro.core.parser import parse_pattern
from repro.graph import datasets
from repro.graph.generators import random_weights


def main() -> None:
    graph = datasets.mico()
    weights = random_weights(graph, seed=3)
    print(f"Data graph: {graph}\n")

    # 1. Plain counting over a declared pattern set (morphing decides).
    counts = (
        PatternProgram.on(graph)
        .match([TRIANGLE, FOUR_CLIQUE, TAILED_TRIANGLE.vertex_induced()])
        .count()
    )
    print("counts:")
    for pattern, count in counts.items():
        print(f"  {pattern!r:>70} -> {count:,}")

    # 2. A filtered analytics query: heavy triangles (all vertices with
    #    positive weight), expressed as filter + map + reduce.
    heavy = (
        PatternProgram.on(graph)
        .match(TRIANGLE)
        .filter(lambda p, m: all(weights[v] > 0 for v in m))
        .map(lambda p, m: float(np.sum(weights[list(m)])))
        .reduce(lambda a, b: a + b, zero=0.0)
    )
    print(f"\ntotal weight over all-positive triangles: {heavy[TRIANGLE]:.2f}")

    # 3. A pattern written in the DSL, existence-probed.
    house = parse_pattern("a-b-c-d-a, a-e, b-e")  # the 'house' shape
    exists = PatternProgram.on(graph).match(house).exists()
    print(f"house pattern present: {exists[house]}")

    # 4. Hub analysis: mean degree of matched 4-star centers.
    stars = PatternProgram.on(graph).match(FOUR_STAR).map(
        lambda p, m: graph.degree(m[0])
    ).reduce(lambda a, b: a + b, zero=0)
    total_stars = PatternProgram.on(graph).match(FOUR_STAR).count()[FOUR_STAR]
    print(
        f"4-stars: {total_stars:,}; mean center degree "
        f"{stars[FOUR_STAR] / total_stars:.1f}"
    )


if __name__ == "__main__":
    main()
