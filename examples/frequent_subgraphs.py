#!/usr/bin/env python3
"""Frequent Subgraph Mining on a community-structured labeled graph.

FSM grows labeled edge-induced patterns level by level (size = number of
edges, as in the paper's Figure 3) and keeps those whose MNI support [8]
reaches a threshold. The MNI table is the expensive per-match UDF that
makes FSM the paper's UDF-bound workload (Figure 4a / Section 7.2).

This example mines a co-purchase-style graph (dense same-label
communities), prints the frequent patterns by level, and compares the
baseline against the morphing-enabled run — including what the cost model
decided per level.

Run:  python examples/frequent_subgraphs.py
"""

from __future__ import annotations

from repro.apps.fsm import mine_frequent_subgraphs
from repro.core.pattern import Pattern
from repro.graph.generators import community_graph


def describe(pattern: Pattern) -> str:
    labels = "/".join(str(pattern.label(v)) for v in range(pattern.n))
    edges = ", ".join(f"{u}-{v}" for u, v in sorted(pattern.edges))
    return f"{pattern.n}v [{labels}] edges({edges})"


def main() -> None:
    graph = community_graph(10, 22, 0.35, 120, seed=41, name="co-purchase")
    print(f"Data graph: {graph} (10 dense single-label communities)\n")

    threshold = 14
    baseline = mine_frequent_subgraphs(
        graph, support_threshold=threshold, max_edges=3, morph=False
    )
    morphed = mine_frequent_subgraphs(
        graph, support_threshold=threshold, max_edges=3, morph=True
    )
    assert baseline.frequent == morphed.frequent, "morphing must be exact"

    print(f"Support threshold: {threshold} (MNI)")
    for level in sorted(baseline.candidates_per_level):
        frequent = baseline.frequent_at_level(level)
        print(
            f"level {level}: {baseline.candidates_per_level[level]:4d} candidates, "
            f"{len(frequent):4d} frequent"
        )
        for pattern, support in sorted(
            frequent.items(), key=lambda kv: -kv[1]
        )[:5]:
            print(f"    support={support:3d}  {describe(pattern)}")

    print(
        f"\nbaseline {baseline.total_seconds:.2f}s "
        f"({baseline.stats.udf_calls} MNI UDF calls) | "
        f"morphed {morphed.total_seconds:.2f}s "
        f"({morphed.stats.udf_calls} MNI UDF calls)"
    )
    print(
        "The cost model morphs a level only when the vertex-induced "
        "alternatives are predicted to repay their extra matching work."
    )


if __name__ == "__main__":
    main()
